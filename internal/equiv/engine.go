package equiv

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"bpi/internal/cert"
	"bpi/internal/names"
	"bpi/internal/obs"
)

// ErrCanceled reports that a query was abandoned because its context was
// canceled or its deadline expired; the verdict is inconclusive. It unwraps
// to the context error, so errors.Is(err, context.DeadlineExceeded)
// distinguishes timeouts from exploration-budget exhaustion (ErrBudget).
type ErrCanceled struct{ Cause error }

func (e ErrCanceled) Error() string { return "equiv: query canceled: " + e.Cause.Error() }

// Unwrap exposes the context error for errors.Is/As.
func (e ErrCanceled) Unwrap() error { return e.Cause }

// relKind selects which of the paper's bisimilarities an engine decides.
type relKind int

const (
	relLabelled relKind = iota // Definitions 7/8
	relBarbed                  // Definition 3
	relStep                    // Definition 5
)

type spec struct {
	kind relKind
	weak bool
}

func (s spec) String() string {
	k := map[relKind]string{relLabelled: "labelled", relBarbed: "barbed", relStep: "step"}[s.kind]
	if s.weak {
		return "weak " + k
	}
	return "strong " + k
}

// Result reports an equivalence verdict.
type Result struct {
	// Related is the verdict.
	Related bool
	// Pairs is the number of term pairs explored.
	Pairs int
	// Reason describes the obligation that failed when Related is false.
	Reason string
	// Cert is the checkable certificate of the verdict, emitted when the
	// Checker's Certify flag is set (nil otherwise). Cached verdicts return
	// the cached certificate, in the orientation of the original query.
	Cert *cert.Certificate
}

// obMove is the structured identity of an obligation's challenge: which side
// moved, how, and to what — enough to re-derive the challenge independently
// of the engine (certificates) and to name it precisely (Reason).
type obMove struct {
	side    string // "left" | "right"
	kind    string // "tau" | "out" | "react" | "step"
	label   string // canonical output label (kind "out")
	ch      names.Name
	payload []names.Name
	// mover is the challenger's derivative (the target of the move).
	mover *termInfo
}

// obligation is one matching requirement of a pair: at least one candidate
// successor pair must remain in the relation.
type obligation struct {
	desc       string
	mv         obMove
	candidates []int
}

type pairNode struct {
	p, q *termInfo
	obs  []obligation
	bad  bool
	// staticBad records that the pair failed a build-time check (barbs)
	// rather than the fixpoint, so its reason is already deterministic.
	staticBad bool
	reason    string
	// failSide/failBarb identify the static barb failure structurally (the
	// side owning the unmatched barb, and its channel).
	failSide string
	failBarb names.Name
}

// built is the result of constructing one pair's obligations. Builders only
// read the (concurrency-safe) store, never engine state, so a wave of pairs
// can be built by parallel workers and merged deterministically afterwards.
type built struct {
	bad      bool
	reason   string
	failSide string
	failBarb names.Name
	obs      []obSpec
	err      error
}

type obSpec struct {
	desc  string
	mv    obMove
	cands [][2]*termInfo
}

func (b *built) add(desc string, mv obMove, cands [][2]*termInfo) {
	b.obs = append(b.obs, obSpec{desc: desc, mv: mv, cands: cands})
}

// failBarbOn records a static barb failure: side owns a barb on a that the
// other side cannot (weakly) answer.
func (b *built) failBarbOn(side string, a names.Name, format string, args ...any) {
	b.bad = true
	b.failSide, b.failBarb = side, a
	b.reason = fmt.Sprintf(format, args...)
}

type engine struct {
	c        *Checker
	ctx      context.Context
	sp       spec
	nodes    []*pairNode
	index    map[[2]uint64]int
	frontier []int

	// Observability: nil when the checker has no tracer; every use is a
	// nil-safe no-op then. Counters are resolved once per run so the hot
	// loops touch no map.
	tr     *obs.Tracer
	cPairs *obs.Counter
}

func (c *Checker) run(ctx context.Context, pi, qi *termInfo, sp spec) (Result, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	tr := c.Obs
	e := &engine{
		c: c, ctx: ctx, sp: sp, index: map[[2]uint64]int{},
		tr:     tr,
		cPairs: tr.Counter("equiv.pairs_expanded"),
	}
	run := tr.Span("equiv.run")
	defer run.End()
	root, err := e.node(pi, qi)
	if err != nil {
		return Result{}, err
	}
	if err := e.explore(run); err != nil {
		return Result{}, err
	}
	fix := run.Child("equiv.fixpoint")
	e.fixpoint()
	fix.End()
	rn := e.nodes[root]
	res := Result{Related: !rn.bad, Pairs: len(e.nodes)}
	if rn.bad {
		reason := rn.reason
		if !rn.staticBad {
			reason = e.failReason(rn)
		}
		res.Reason = fmt.Sprintf("%s: %s (comparing %s with %s)", sp, reason,
			stringOf(rn.p), stringOf(rn.q))
	}
	if c.Certify {
		res.Cert = e.certificate(root)
	}
	return res, nil
}

// explore closes the pair space breadth-first. Each BFS wave is built (pure
// store reads) either inline or by a bounded worker pool, then merged into
// the engine in submission order — so node numbering, budget errors and the
// explored set are identical whatever the worker count. Context cancellation
// is observed between pairs (sequential) and between claims (parallel), so a
// deadline aborts the query promptly even on unbounded pair spaces.
func (e *engine) explore(run *obs.Span) error {
	workers := e.c.workers()
	cWaves := e.tr.Counter("equiv.waves")
	span := run.Child("equiv.explore")
	defer span.End()
	for len(e.frontier) > 0 {
		wave := e.frontier
		e.frontier = nil
		cWaves.Add(1)
		ws := span.Child("equiv.wave")
		err := e.exploreWave(wave, workers)
		ws.End()
		if err != nil {
			return err
		}
	}
	return nil
}

// exploreWave builds and merges one BFS wave (see explore).
func (e *engine) exploreWave(wave []int, workers int) error {
	if workers <= 1 || len(wave) == 1 {
		for _, i := range wave {
			if err := e.ctx.Err(); err != nil {
				return ErrCanceled{err}
			}
			b := e.buildPair(e.nodes[i])
			if b.err != nil {
				return b.err
			}
			if err := e.merge(i, b); err != nil {
				return err
			}
		}
		return nil
	}
	builds := make([]*built, len(wave))
	n := workers
	if n > len(wave) {
		n = len(wave)
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < n; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				j := int(next.Add(1)) - 1
				if j >= len(wave) {
					return
				}
				if err := e.ctx.Err(); err != nil {
					builds[j] = &built{err: ErrCanceled{err}}
					continue
				}
				builds[j] = e.buildPair(e.nodes[wave[j]])
			}
		}()
	}
	wg.Wait()
	// ID-ordered merge: the first error (in wave order) wins, matching
	// the sequential run.
	for j, i := range wave {
		if builds[j].err != nil {
			return builds[j].err
		}
		if err := e.merge(i, builds[j]); err != nil {
			return err
		}
	}
	return nil
}

// buildPair computes the static checks and matching obligations of one pair,
// touching only the shared store (safe to call from worker goroutines).
func (e *engine) buildPair(n *pairNode) *built {
	b := &built{}
	var err error
	switch e.sp.kind {
	case relBarbed:
		err = e.buildBarbed(n, b)
	case relStep:
		err = e.buildStep(n, b)
	default:
		err = e.buildLabelled(n, b)
	}
	b.err = err
	return b
}

// merge installs one built pair: statically bad pairs keep their reason,
// obligation candidates are interned to node indices (scheduling fresh pairs
// onto the next frontier).
func (e *engine) merge(i int, b *built) error {
	n := e.nodes[i]
	if b.bad {
		n.bad, n.staticBad, n.reason = true, true, b.reason
		n.failSide, n.failBarb = b.failSide, b.failBarb
		return nil
	}
	for _, ob := range b.obs {
		o := obligation{desc: ob.desc, mv: ob.mv, candidates: make([]int, 0, len(ob.cands))}
		for _, cd := range ob.cands {
			ci, err := e.node(cd[0], cd[1])
			if err != nil {
				return err
			}
			o.candidates = append(o.candidates, ci)
		}
		n.obs = append(n.obs, o)
	}
	return nil
}

// node interns the ordered pair (p,q) by store IDs, scheduling obligation
// construction for new pairs.
func (e *engine) node(p, q *termInfo) (int, error) {
	k := [2]uint64{p.id, q.id}
	if i, ok := e.index[k]; ok {
		return i, nil
	}
	if len(e.nodes) >= e.c.maxPairs() {
		return 0, ErrBudget{"pair space"}
	}
	i := len(e.nodes)
	e.nodes = append(e.nodes, &pairNode{p: p, q: q})
	e.index[k] = i
	e.frontier = append(e.frontier, i)
	e.cPairs.Add(1)
	return i, nil
}

// fixpoint computes the greatest fixpoint by worklist over reverse
// dependency edges (candidate → obligations it supports): when a pair dies,
// only the obligations actually depending on it are revisited, so the sweep
// is O(total candidate edges) instead of O(rescans × relation size).
func (e *engine) fixpoint() {
	type dep struct{ node, ob int32 }
	rev := make([][]dep, len(e.nodes))
	alive := make([][]int32, len(e.nodes))
	var work []int
	for i, n := range e.nodes {
		if n.bad {
			work = append(work, i)
			continue
		}
		alive[i] = make([]int32, len(n.obs))
		for j, ob := range n.obs {
			alive[i][j] = int32(len(ob.candidates))
			if len(ob.candidates) == 0 {
				if !n.bad {
					n.bad = true
					n.reason = ob.desc
					work = append(work, i)
				}
				continue
			}
			for _, ci := range ob.candidates {
				rev[ci] = append(rev[ci], dep{int32(i), int32(j)})
			}
		}
	}
	cPops := e.tr.Counter("equiv.worklist_pops")
	for len(work) > 0 {
		i := work[len(work)-1]
		work = work[:len(work)-1]
		cPops.Add(1)
		for _, d := range rev[i] {
			dn := e.nodes[d.node]
			if dn.bad {
				continue
			}
			alive[d.node][d.ob]--
			if alive[d.node][d.ob] == 0 {
				dn.bad = true
				dn.reason = dn.obs[d.ob].desc
				work = append(work, int(d.node))
			}
		}
	}
}

// failReason picks the deterministic explanation for a fixpoint-discarded
// pair: the first obligation (in construction order) with no surviving
// candidate. Worklist processing order marked the pair bad via *some*
// obligation; rescanning keeps Reason independent of scheduling.
func (e *engine) failReason(n *pairNode) string {
	for _, ob := range n.obs {
		ok := false
		for _, ci := range ob.candidates {
			if !e.nodes[ci].bad {
				ok = true
				break
			}
		}
		if !ok {
			return ob.desc
		}
	}
	return n.reason
}

// ---- barbed bisimulation (Definition 3) -----------------------------------

func (e *engine) buildBarbed(n *pairNode, b *built) error {
	// Barb conditions.
	pb, qb := strongBarbs(n.p), strongBarbs(n.q)
	if !e.sp.weak {
		if !pb.Equal(qb) {
			side, a := barbWitness(pb, qb)
			b.failBarbOn(side, a, "strong barbs differ on %s: %v vs %v", a, pb, qb)
			return nil
		}
	} else {
		for _, a := range pb.Sorted() {
			ok, err := e.c.weakBarb(n.q, a)
			if err != nil {
				return err
			}
			if !ok {
				b.failBarbOn("left", a, "right side lacks weak barb on %s", a)
				return nil
			}
		}
		for _, a := range qb.Sorted() {
			ok, err := e.c.weakBarb(n.p, a)
			if err != nil {
				return err
			}
			if !ok {
				b.failBarbOn("right", a, "left side lacks weak barb on %s", a)
				return nil
			}
		}
	}
	// τ moves.
	pt, err := e.c.tauSucc(n.p)
	if err != nil {
		return err
	}
	qt, err := e.c.tauSucc(n.q)
	if err != nil {
		return err
	}
	qMatch, err := e.weakOrStrongTauTargets(n.q, qt)
	if err != nil {
		return err
	}
	pMatch, err := e.weakOrStrongTauTargets(n.p, pt)
	if err != nil {
		return err
	}
	for _, ps := range pt {
		var cands [][2]*termInfo
		for _, qs := range qMatch {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(fmt.Sprintf("tau move of left to %s unmatched", stringOf(ps)),
			obMove{side: "left", kind: "tau", mover: ps}, cands)
	}
	for _, qs := range qt {
		var cands [][2]*termInfo
		for _, ps := range pMatch {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(fmt.Sprintf("tau move of right to %s unmatched", stringOf(qs)),
			obMove{side: "right", kind: "tau", mover: qs}, cands)
	}
	return nil
}

// weakOrStrongTauTargets returns the states that may answer a τ move: the
// strong τ successors, or the full τ* closure (including staying put) in the
// weak case.
func (e *engine) weakOrStrongTauTargets(ti *termInfo, strong []*termInfo) ([]*termInfo, error) {
	if !e.sp.weak {
		return strong, nil
	}
	return e.c.tauClosure(ti)
}

// ---- step bisimulation (Definition 5) --------------------------------------

func (e *engine) buildStep(n *pairNode, b *built) error {
	// ↓φ barbs: subjects of output transitions.
	pb, qb := strongBarbs(n.p), strongBarbs(n.q)
	if !e.sp.weak {
		if !pb.Equal(qb) {
			side, a := barbWitness(pb, qb)
			b.failBarbOn(side, a, "step barbs differ on %s: %v vs %v", a, pb, qb)
			return nil
		}
	} else {
		for _, a := range pb.Sorted() {
			ok, err := e.weakStepBarb(n.q, a)
			if err != nil {
				return err
			}
			if !ok {
				b.failBarbOn("left", a, "right side lacks weak step barb on %s", a)
				return nil
			}
		}
		for _, a := range qb.Sorted() {
			ok, err := e.weakStepBarb(n.p, a)
			if err != nil {
				return err
			}
			if !ok {
				b.failBarbOn("right", a, "left side lacks weak step barb on %s", a)
				return nil
			}
		}
	}
	// Autonomous moves, label-blind.
	pa, err := e.c.autonomousSucc(n.p)
	if err != nil {
		return err
	}
	qa, err := e.c.autonomousSucc(n.q)
	if err != nil {
		return err
	}
	qTargets, pTargets := qa, pa
	if e.sp.weak {
		if qTargets, err = e.c.autonomousClosure(n.q); err != nil {
			return err
		}
		if pTargets, err = e.c.autonomousClosure(n.p); err != nil {
			return err
		}
	}
	for _, ps := range pa {
		var cands [][2]*termInfo
		for _, qs := range qTargets {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(fmt.Sprintf("autonomous step of left to %s unmatched", stringOf(ps)),
			obMove{side: "left", kind: "step", mover: ps}, cands)
	}
	for _, qs := range qa {
		var cands [][2]*termInfo
		for _, ps := range pTargets {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(fmt.Sprintf("autonomous step of right to %s unmatched", stringOf(qs)),
			obMove{side: "right", kind: "step", mover: qs}, cands)
	}
	return nil
}

// weakStepBarb reports that some (τ ∪ output)*-derivative strongly barbs on a.
func (e *engine) weakStepBarb(ti *termInfo, a names.Name) (bool, error) {
	cl, err := e.c.autonomousClosure(ti)
	if err != nil {
		return false, err
	}
	for _, s := range cl {
		if strongBarbs(s).Contains(a) {
			return true, nil
		}
	}
	return false, nil
}
