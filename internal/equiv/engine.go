package equiv

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// relKind selects which of the paper's bisimilarities an engine decides.
type relKind int

const (
	relLabelled relKind = iota // Definitions 7/8
	relBarbed                  // Definition 3
	relStep                    // Definition 5
)

type spec struct {
	kind relKind
	weak bool
}

func (s spec) String() string {
	k := map[relKind]string{relLabelled: "labelled", relBarbed: "barbed", relStep: "step"}[s.kind]
	if s.weak {
		return "weak " + k
	}
	return "strong " + k
}

// Result reports an equivalence verdict.
type Result struct {
	// Related is the verdict.
	Related bool
	// Pairs is the number of term pairs explored.
	Pairs int
	// Reason describes the obligation that failed when Related is false.
	Reason string
}

// obligation is one matching requirement of a pair: at least one candidate
// successor pair must remain in the relation.
type obligation struct {
	desc       string
	candidates []int
}

type pairNode struct {
	p, q   *termInfo
	obs    []obligation
	bad    bool
	reason string
}

type engine struct {
	c     *Checker
	sp    spec
	nodes []*pairNode
	index map[string]int
	queue []int
}

func (c *Checker) run(p, q syntax.Proc, sp spec) (Result, error) {
	e := &engine{c: c, sp: sp, index: map[string]int{}}
	pi, err := c.intern(p)
	if err != nil {
		return Result{}, err
	}
	qi, err := c.intern(q)
	if err != nil {
		return Result{}, err
	}
	root, err := e.node(pi, qi)
	if err != nil {
		return Result{}, err
	}
	// Build obligations breadth-first until the pair space is closed.
	for len(e.queue) > 0 {
		i := e.queue[0]
		e.queue = e.queue[1:]
		if err := e.build(i); err != nil {
			return Result{}, err
		}
	}
	// Greatest fixpoint: drop pairs with an unsatisfiable obligation.
	for changed := true; changed; {
		changed = false
		for _, n := range e.nodes {
			if n.bad {
				continue
			}
			for _, ob := range n.obs {
				ok := false
				for _, ci := range ob.candidates {
					if !e.nodes[ci].bad {
						ok = true
						break
					}
				}
				if !ok {
					n.bad = true
					n.reason = ob.desc
					changed = true
					break
				}
			}
		}
	}
	rn := e.nodes[root]
	res := Result{Related: !rn.bad, Pairs: len(e.nodes)}
	if rn.bad {
		res.Reason = fmt.Sprintf("%s: %s (comparing %s with %s)", sp, rn.reason,
			syntax.String(rn.p.proc), syntax.String(rn.q.proc))
	}
	return res, nil
}

// node interns the ordered pair (p,q), scheduling obligation construction
// for new pairs.
func (e *engine) node(p, q *termInfo) (int, error) {
	k := pairKey(p.key, q.key)
	if i, ok := e.index[k]; ok {
		return i, nil
	}
	if len(e.nodes) >= e.c.maxPairs() {
		return 0, ErrBudget{"pair space"}
	}
	i := len(e.nodes)
	e.nodes = append(e.nodes, &pairNode{p: p, q: q})
	e.index[k] = i
	e.queue = append(e.queue, i)
	return i, nil
}

// build computes the static checks and matching obligations of pair i.
func (e *engine) build(i int) error {
	n := e.nodes[i]
	switch e.sp.kind {
	case relBarbed:
		return e.buildBarbed(n)
	case relStep:
		return e.buildStep(n)
	default:
		return e.buildLabelled(n)
	}
}

// addMoveObligation appends an obligation for a single move of `who` with
// the given successor candidates.
func (e *engine) addObligation(n *pairNode, desc string, cands [][2]*termInfo) error {
	ob := obligation{desc: desc}
	for _, cd := range cands {
		ci, err := e.node(cd[0], cd[1])
		if err != nil {
			return err
		}
		ob.candidates = append(ob.candidates, ci)
	}
	n.obs = append(n.obs, ob)
	return nil
}

// ---- barbed bisimulation (Definition 3) -----------------------------------

func (e *engine) buildBarbed(n *pairNode) error {
	// Barb conditions.
	pb, qb := strongBarbs(n.p), strongBarbs(n.q)
	if !e.sp.weak {
		if !pb.Equal(qb) {
			n.bad = true
			n.reason = fmt.Sprintf("strong barbs differ: %v vs %v", pb, qb)
			return nil
		}
	} else {
		for a := range pb {
			ok, err := e.c.weakBarb(n.q, a)
			if err != nil {
				return err
			}
			if !ok {
				n.bad = true
				n.reason = fmt.Sprintf("right side lacks weak barb on %s", a)
				return nil
			}
		}
		for a := range qb {
			ok, err := e.c.weakBarb(n.p, a)
			if err != nil {
				return err
			}
			if !ok {
				n.bad = true
				n.reason = fmt.Sprintf("left side lacks weak barb on %s", a)
				return nil
			}
		}
	}
	// τ moves.
	pt, err := e.c.tauSucc(n.p)
	if err != nil {
		return err
	}
	qt, err := e.c.tauSucc(n.q)
	if err != nil {
		return err
	}
	qMatch, err := e.weakOrStrongTauTargets(n.q, qt)
	if err != nil {
		return err
	}
	pMatch, err := e.weakOrStrongTauTargets(n.p, pt)
	if err != nil {
		return err
	}
	for _, ps := range pt {
		var cands [][2]*termInfo
		for _, qs := range qMatch {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		if err := e.addObligation(n, "tau move of left unmatched", cands); err != nil {
			return err
		}
	}
	for _, qs := range qt {
		var cands [][2]*termInfo
		for _, ps := range pMatch {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		if err := e.addObligation(n, "tau move of right unmatched", cands); err != nil {
			return err
		}
	}
	return nil
}

// weakOrStrongTauTargets returns the states that may answer a τ move: the
// strong τ successors, or the full τ* closure (including staying put) in the
// weak case.
func (e *engine) weakOrStrongTauTargets(ti *termInfo, strong []*termInfo) ([]*termInfo, error) {
	if !e.sp.weak {
		return strong, nil
	}
	return e.c.tauClosure(ti)
}

// ---- step bisimulation (Definition 5) --------------------------------------

func (e *engine) buildStep(n *pairNode) error {
	// ↓φ barbs: subjects of output transitions.
	pb, qb := strongBarbs(n.p), strongBarbs(n.q)
	if !e.sp.weak {
		if !pb.Equal(qb) {
			n.bad = true
			n.reason = fmt.Sprintf("step barbs differ: %v vs %v", pb, qb)
			return nil
		}
	} else {
		for a := range pb {
			ok, err := e.weakStepBarb(n.q, a)
			if err != nil {
				return err
			}
			if !ok {
				n.bad = true
				n.reason = fmt.Sprintf("right side lacks weak step barb on %s", a)
				return nil
			}
		}
		for a := range qb {
			ok, err := e.weakStepBarb(n.p, a)
			if err != nil {
				return err
			}
			if !ok {
				n.bad = true
				n.reason = fmt.Sprintf("left side lacks weak step barb on %s", a)
				return nil
			}
		}
	}
	// Autonomous moves, label-blind.
	pa, err := e.autonomousSucc(n.p)
	if err != nil {
		return err
	}
	qa, err := e.autonomousSucc(n.q)
	if err != nil {
		return err
	}
	qTargets, pTargets := qa, pa
	if e.sp.weak {
		if qTargets, err = e.autonomousClosure(n.q); err != nil {
			return err
		}
		if pTargets, err = e.autonomousClosure(n.p); err != nil {
			return err
		}
	}
	for _, ps := range pa {
		var cands [][2]*termInfo
		for _, qs := range qTargets {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		if err := e.addObligation(n, "autonomous step of left unmatched", cands); err != nil {
			return err
		}
	}
	for _, qs := range qa {
		var cands [][2]*termInfo
		for _, ps := range pTargets {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		if err := e.addObligation(n, "autonomous step of right unmatched", cands); err != nil {
			return err
		}
	}
	return nil
}

// autonomousSucc returns the τ- and output-successors of ti (outputs with
// extruded names canonicalised deterministically).
func (e *engine) autonomousSucc(ti *termInfo) ([]*termInfo, error) {
	var out []*termInfo
	for _, t := range ti.trans {
		if !t.Act.IsStep() {
			continue
		}
		tt := t
		if t.Act.IsOutput() && len(t.Act.Bound) > 0 {
			act, tgt := semantics.CanonTrans(t.Act, t.Target)
			tt = semantics.Trans{Act: act, Target: tgt}
		}
		s, err := e.c.intern(tt.Target)
		if err != nil {
			return nil, err
		}
		out = append(out, s)
	}
	return out, nil
}

// autonomousClosure returns the states reachable by (τ ∪ output)*,
// including ti itself.
func (e *engine) autonomousClosure(ti *termInfo) ([]*termInfo, error) {
	seen := map[string]*termInfo{ti.key: ti}
	work := []*termInfo{ti}
	for len(work) > 0 {
		cur := work[len(work)-1]
		work = work[:len(work)-1]
		succ, err := e.autonomousSucc(cur)
		if err != nil {
			return nil, err
		}
		for _, s := range succ {
			if _, ok := seen[s.key]; ok {
				continue
			}
			if len(seen) >= e.c.maxClosure() {
				return nil, ErrBudget{"autonomous closure"}
			}
			seen[s.key] = s
			work = append(work, s)
		}
	}
	out := make([]*termInfo, 0, len(seen))
	for _, s := range seen {
		out = append(out, s)
	}
	sortTerms(out)
	return out, nil
}

// weakStepBarb reports that some (τ ∪ output)*-derivative strongly barbs on a.
func (e *engine) weakStepBarb(ti *termInfo, a names.Name) (bool, error) {
	cl, err := e.autonomousClosure(ti)
	if err != nil {
		return false, err
	}
	for _, s := range cl {
		if strongBarbs(s).Contains(a) {
			return true, nil
		}
	}
	return false, nil
}

func sortTerms(ts []*termInfo) {
	for i := 1; i < len(ts); i++ {
		for j := i; j > 0 && ts[j].key < ts[j-1].key; j-- {
			ts[j], ts[j-1] = ts[j-1], ts[j]
		}
	}
}
