package equiv

import (
	"sort"
	"strings"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

func stringOf(ti *termInfo) string { return syntax.String(ti.proc) }

// buildLabelled creates the obligations of Definition 8 (strong) or
// Definition 7 (weak) for the pair n:
//
//  1. τ moves matched by τ (or by =ε=> when weak);
//  2. (possibly bound) outputs matched on identical canonical labels;
//  3. receptions-or-discards a(c̃)? matched by receptions-or-discards,
//     for every channel either side listens on and every payload tuple over
//     the pair universe.
func (e *engine) buildLabelled(p, q *termInfo, it interner, b *built) error {
	avoid := freeUnion(p, q)

	// Clause 1: τ.
	pt, err := e.c.tauSuccIn(it, p)
	if err != nil {
		return err
	}
	qt, err := e.c.tauSuccIn(it, q)
	if err != nil {
		return err
	}
	qTauTargets, err := e.weakOrStrongTauTargets(it, q, qt)
	if err != nil {
		return err
	}
	pTauTargets, err := e.weakOrStrongTauTargets(it, p, pt)
	if err != nil {
		return err
	}
	for _, ps := range pt {
		var cands [][2]*termInfo
		for _, qs := range qTauTargets {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(obMove{side: "left", kind: "tau", mover: ps}, cands)
	}
	for _, qs := range qt {
		var cands [][2]*termInfo
		for _, ps := range pTauTargets {
			cands = append(cands, [2]*termInfo{ps, qs})
		}
		b.add(obMove{side: "right", kind: "tau", mover: qs}, cands)
	}

	// Clause 2: outputs on identical canonical labels.
	if err := e.outputObligations(p, q, it, b, avoid, true); err != nil {
		return err
	}
	if err := e.outputObligations(p, q, it, b, avoid, false); err != nil {
		return err
	}

	// Clause 3: receptions-or-discards.
	return e.reactionObligations(p, q, it, b)
}

// outputObligations adds, for every output move of the `left` (or right)
// component, the candidates derived from matching outputs of the other side.
func (e *engine) outputObligations(p, q *termInfo, it interner, b *built, avoid names.Set, leftMoves bool) error {
	mover, other := p, q
	if !leftMoves {
		mover, other = q, p
	}
	mouts := outputsCanon(mover, avoid)
	// Pre-compute the other side's (possibly weak) answers per label.
	answers := map[string][]*termInfo{}
	collect := func(src *termInfo) error {
		for _, ot := range outputsCanon(src, avoid) {
			tgt, err := it.intern(ot.Target)
			if err != nil {
				return err
			}
			finals := []*termInfo{tgt}
			if e.sp.weak {
				if finals, err = e.c.tauClosureIn(it, tgt); err != nil {
					return err
				}
			}
			answers[ot.Act.String()] = append(answers[ot.Act.String()], finals...)
		}
		return nil
	}
	if e.sp.weak {
		cl, err := e.c.tauClosureIn(it, other)
		if err != nil {
			return err
		}
		for _, s := range cl {
			if err := collect(s); err != nil {
				return err
			}
		}
	} else {
		if err := collect(other); err != nil {
			return err
		}
	}
	side := "left"
	if !leftMoves {
		side = "right"
	}
	for _, mt := range mouts {
		mtgt, err := it.intern(mt.Target)
		if err != nil {
			return err
		}
		var cands [][2]*termInfo
		for _, ans := range answers[mt.Act.String()] {
			if leftMoves {
				cands = append(cands, [2]*termInfo{mtgt, ans})
			} else {
				cands = append(cands, [2]*termInfo{ans, mtgt})
			}
		}
		b.add(obMove{side: side, kind: "out", label: mt.Act.String(), mover: mtgt}, cands)
	}
	return nil
}

// reactionObligations adds the clause-3 obligations: for every channel a on
// which either side listens, and every payload c̃ over the pair universe,
// every reaction (reception or discard) of one side must be matched by a
// reaction of the other.
func (e *engine) reactionObligations(p, q *termInfo, it interner, b *built) error {
	shapes := inputShapes(p)
	for s := range inputShapes(q) {
		shapes[s] = true
	}
	ordered := make([]shape, 0, len(shapes))
	for s := range shapes {
		ordered = append(ordered, s)
	}
	sortShapes(ordered)
	for _, s := range ordered {
		u := pairUniverse(p, q, s.arity)
		for _, payload := range tuples(u, s.arity) {
			pr, err := e.reactTargets(it, p, s.ch, payload)
			if err != nil {
				return err
			}
			qr, err := e.reactTargets(it, q, s.ch, payload)
			if err != nil {
				return err
			}
			// Strong one-step reactions (the moves to be matched).
			pm, err := e.c.reactionsIn(it, p, s.ch, payload)
			if err != nil {
				return err
			}
			qm, err := e.c.reactionsIn(it, q, s.ch, payload)
			if err != nil {
				return err
			}
			for _, r := range pm {
				var cands [][2]*termInfo
				for _, t := range qr {
					cands = append(cands, [2]*termInfo{r, t})
				}
				b.add(obMove{side: "left", kind: "react", ch: s.ch, payload: payload, mover: r}, cands)
			}
			for _, r := range qm {
				var cands [][2]*termInfo
				for _, t := range pr {
					cands = append(cands, [2]*termInfo{t, r})
				}
				b.add(obMove{side: "right", kind: "react", ch: s.ch, payload: payload, mover: r}, cands)
			}
		}
	}
	return nil
}

// reactTargets returns the states that may answer a reaction move: strong
// reactions, or weak ones (=ε=> · a(c̃)? · =ε=>) in the weak case.
func (e *engine) reactTargets(it interner, ti *termInfo, ch names.Name, payload []names.Name) ([]*termInfo, error) {
	if !e.sp.weak {
		return e.c.reactionsIn(it, ti, ch, payload)
	}
	pre, err := e.c.tauClosureIn(it, ti)
	if err != nil {
		return nil, err
	}
	seen := map[uint64]*termInfo{}
	for _, s := range pre {
		rs, err := e.c.reactionsIn(it, s, ch, payload)
		if err != nil {
			return nil, err
		}
		for _, r := range rs {
			post, err := e.c.tauClosureIn(it, r)
			if err != nil {
				return nil, err
			}
			for _, t := range post {
				seen[t.id] = t
			}
		}
	}
	out := make([]*termInfo, 0, len(seen))
	for _, t := range seen {
		out = append(out, t)
	}
	sortTerms(out)
	return out, nil
}

func sortShapes(ss []shape) {
	sort.Slice(ss, func(i, j int) bool {
		if ss[i].ch != ss[j].ch {
			return ss[i].ch < ss[j].ch
		}
		return ss[i].arity < ss[j].arity
	})
}

func joinNames(ns []names.Name) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = string(n)
	}
	return strings.Join(parts, ",")
}
