package equiv

import (
	"testing"

	"bpi/internal/names"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// TestWeakWitnessVerdicts records the weak-relation behaviour of the
// strong-witness pairs: every strong verdict must persist weakly, and the
// τ-insensitive pairs gain relatedness only where expected.
func TestWeakWitnessVerdicts(t *testing.T) {
	ch := newC()
	// Remark 2(1) pair p1 = b̄+τ.c̄, q1 = b̄+b̄.c̄: weakly, the τ branch of p1
	// may be matched lazily — but the resulting states still differ (c̄ has
	// a weak barb on c that q1's post-b̄ state matches only after emitting
	// b). They stay apart even weakly under the labelled relation.
	p1 := syntax.Choice(syntax.SendN(b), syntax.TauP(syntax.SendN(c)))
	q1 := syntax.Choice(syntax.SendN(b), syntax.Send(b, nil, syntax.SendN(c)))
	if labelled(t, ch, p1, q1, true) {
		t.Error("p1 ≉ q1 expected (the τ-derivative c̄ has no weak match)")
	}
	// Weak basics across relations: τ-prefix absorption.
	p := syntax.TauP(syntax.TauP(syntax.SendN(a)))
	q := syntax.SendN(a)
	if !labelled(t, ch, p, q, true) || !barbed(t, ch, p, q, true) || !step(t, ch, p, q, true) {
		t.Error("τ.τ.ā ≈ ā must hold in every weak relation")
	}
}

// TestWeakStuckListenerSaturation table-drives the weak relations around the
// Remark 4 stuck listener G = b? | b?(x): mixed arities block both joint
// reception and joint discard on b, so G is transition-free without being 0.
// τ-saturation must treat it like any other inert state — neither inventing
// moves for it (left column) nor letting a τ prefix hide it (absorption
// rows). This is the bug class of the weak-saturation fix: the τ-closure of
// a stuck listener is just itself, and every verdict must be identical under
// the sequential and the parallel engine.
func TestWeakStuckListenerSaturation(t *testing.T) {
	G := syntax.Group(syntax.RecvN(b), syntax.RecvN(b, x))
	cases := []struct {
		name               string
		p, q               syntax.Proc
		wLab, wBarb, wStep bool
		sLab               bool
	}{
		// τ-prefix absorption around the stuck state: strongly the τ move is
		// unmatched, weakly it saturates away.
		{"tau absorption", syntax.TauP(G), G, true, true, true, false},
		{"double tau absorption", syntax.TauP(syntax.TauP(G)), syntax.TauP(G), true, true, true, false},
		// G is transition-free, so it collapses onto 0 in every relation that
		// only observes transitions and barbs — including strong labelled:
		// with no receivable shape on either side there is no react challenge.
		{"stuck is inert", G, syntax.PNil, true, true, true, true},
		{"restricted stuck is inert", syntax.Restrict(G, b), syntax.PNil, true, true, true, true},
		// A receivable listener separates: b?(x) offers the (b,1) reaction G
		// cannot answer. Barbed and step stay blind to inputs.
		{"reaction separates", G, syntax.RecvN(b, x), false, true, true, false},
		// Saturation composed with parallel: the τ neighbour fires and leaves
		// the stuck listener behind; G | 0 must then meet G.
		{"parallel tau neighbour", syntax.Group(G, syntax.TauP(syntax.PNil)), G, true, true, true, false},
		// The stuck listener discards on c, so it never blocks a broadcast
		// beside it, and the residue G | 0 is inert.
		{"broadcast past stuck", syntax.Group(G, syntax.SendN(c)), syntax.SendN(c), true, true, true, true},
		{"tau then broadcast", syntax.TauP(syntax.Group(G, syntax.SendN(c))), syntax.SendN(c), true, true, true, false},
		// Choice with a stuck summand contributes no moves: τ.G + G ~ τ.G.
		{"stuck choice summand", syntax.Choice(syntax.TauP(G), G), syntax.TauP(G), true, true, true, true},
	}
	seq := newC()
	par := NewParallelChecker(nil, 4)
	for _, cse := range cases {
		for _, eng := range []struct {
			name string
			ch   *Checker
		}{{"sequential", seq}, {"parallel", par}} {
			got := map[string]bool{
				"weak labelled":   labelled(t, eng.ch, cse.p, cse.q, true),
				"weak barbed":     barbed(t, eng.ch, cse.p, cse.q, true),
				"weak step":       step(t, eng.ch, cse.p, cse.q, true),
				"strong labelled": labelled(t, eng.ch, cse.p, cse.q, false),
			}
			want := map[string]bool{
				"weak labelled":   cse.wLab,
				"weak barbed":     cse.wBarb,
				"weak step":       cse.wStep,
				"strong labelled": cse.sLab,
			}
			for rel, w := range want {
				if got[rel] != w {
					t.Errorf("%s (%s engine) %s = %v, want %v\n p=%s\n q=%s",
						cse.name, eng.name, rel, got[rel], w,
						syntax.String(cse.p), syntax.String(cse.q))
				}
			}
		}
	}
}

// TestWeakCongruencePreservedByContexts samples Theorem 4: pairs related by
// ≈c stay weakly bisimilar under prefix, choice, parallel and restriction
// contexts.
func TestWeakCongruencePreservedByContexts(t *testing.T) {
	ch := newC()
	pairs := [][2]syntax.Proc{
		{syntax.Send(a, nil, syntax.TauP(syntax.SendN(c))), syntax.Send(a, nil, syntax.SendN(c))},
		{syntax.Choice(syntax.SendN(a), syntax.SendN(a)), syntax.SendN(a)},
		{syntax.Group(syntax.RecvN(c, x), syntax.PNil), syntax.RecvN(c, x)},
	}
	contexts := []func(syntax.Proc) syntax.Proc{
		func(p syntax.Proc) syntax.Proc { return syntax.Send(d, nil, p) },
		func(p syntax.Proc) syntax.Proc { return syntax.Choice(p, syntax.SendN(d)) },
		func(p syntax.Proc) syntax.Proc { return syntax.Group(p, syntax.RecvN(d, z)) },
		func(p syntax.Proc) syntax.Proc { return syntax.Restrict(p, "w") },
		func(p syntax.Proc) syntax.Proc { return syntax.If(a, b, p, syntax.SendN(d)) },
	}
	for i, pq := range pairs {
		ok, err := ch.Congruence(pq[0], pq[1], true)
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("pair %d not ≈c: %s vs %s", i, syntax.String(pq[0]), syntax.String(pq[1]))
		}
		for j, ctx := range contexts {
			if !labelled(t, ch, ctx(pq[0]), ctx(pq[1]), true) {
				t.Errorf("pair %d context %d: ≈c broken by context", i, j)
			}
		}
	}
}

// TestWeakCongruenceNotImpliedByWeakBisim: the τ-law pair is ≈ but not ≈c,
// and a + context indeed separates it (the content of the ≈ vs ≈c gap).
func TestWeakCongruenceNotImpliedByWeakBisim(t *testing.T) {
	ch := newC()
	p := syntax.TauP(syntax.SendN(c))
	q := syntax.SendN(c)
	if !labelled(t, ch, p, q, true) {
		t.Fatal("τ.c̄ ≈ c̄ precondition failed")
	}
	ok, err := ch.Congruence(p, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("τ.c̄ ≈c c̄ must fail")
	}
	ctx := func(r syntax.Proc) syntax.Proc { return syntax.Choice(r, syntax.SendN(d)) }
	if labelled(t, ch, ctx(p), ctx(q), true) {
		t.Error("the + context must separate the τ-law pair")
	}
}

// TestWeakOneStepSampledSoundness: ≈+ ⊆ ≈ on random pairs (the weak analogue
// of the Remark 4 chain).
func TestWeakOneStepSampledSoundness(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(5150, cfg)
	ch := newC()
	found := 0
	for i := 0; i < 25; i++ {
		p := g.Term()
		q := g.Mutate(p)
		os, err := ch.OneStep(p, q, true)
		if err != nil {
			t.Fatal(err)
		}
		if !os {
			continue
		}
		found++
		if !labelled(t, ch, p, q, true) {
			t.Errorf("≈+ pair not ≈:\n p=%s\n q=%s", syntax.String(p), syntax.String(q))
		}
	}
	if found == 0 {
		t.Skip("no ≈+ pairs sampled (generator mix)")
	}
}

// TestWeakStrongWitnessConsistency: every witness pair's weak verdicts are
// implied by (at least as permissive as) the strong ones.
func TestWeakStrongWitnessConsistency(t *testing.T) {
	ch := newC()
	type rel func(p, q syntax.Proc, weak bool) (Result, error)
	rels := map[string]rel{
		"labelled": ch.Labelled,
		"barbed":   ch.Barbed,
		"step":     ch.Step,
	}
	pairs := [][2]syntax.Proc{
		{syntax.SendN(a, b), syntax.Send(a, []names.Name{b}, syntax.SendN(c, d))},
		{syntax.RecvN(a), syntax.RecvN(b)},
		{syntax.Choice(syntax.SendN(b), syntax.TauP(syntax.SendN(c))),
			syntax.Choice(syntax.SendN(b), syntax.Send(b, nil, syntax.SendN(c)))},
	}
	for name, r := range rels {
		for i, pq := range pairs {
			s, err := r(pq[0], pq[1], false)
			if err != nil {
				t.Fatal(err)
			}
			w, err := r(pq[0], pq[1], true)
			if err != nil {
				t.Fatal(err)
			}
			if s.Related && !w.Related {
				t.Errorf("%s pair %d: strong but not weak", name, i)
			}
		}
	}
}
