package equiv

import (
	"testing"

	"bpi/internal/names"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

// TestWeakWitnessVerdicts records the weak-relation behaviour of the
// strong-witness pairs: every strong verdict must persist weakly, and the
// τ-insensitive pairs gain relatedness only where expected.
func TestWeakWitnessVerdicts(t *testing.T) {
	ch := newC()
	// Remark 2(1) pair p1 = b̄+τ.c̄, q1 = b̄+b̄.c̄: weakly, the τ branch of p1
	// may be matched lazily — but the resulting states still differ (c̄ has
	// a weak barb on c that q1's post-b̄ state matches only after emitting
	// b). They stay apart even weakly under the labelled relation.
	p1 := syntax.Choice(syntax.SendN(b), syntax.TauP(syntax.SendN(c)))
	q1 := syntax.Choice(syntax.SendN(b), syntax.Send(b, nil, syntax.SendN(c)))
	if labelled(t, ch, p1, q1, true) {
		t.Error("p1 ≉ q1 expected (the τ-derivative c̄ has no weak match)")
	}
	// Weak basics across relations: τ-prefix absorption.
	p := syntax.TauP(syntax.TauP(syntax.SendN(a)))
	q := syntax.SendN(a)
	if !labelled(t, ch, p, q, true) || !barbed(t, ch, p, q, true) || !step(t, ch, p, q, true) {
		t.Error("τ.τ.ā ≈ ā must hold in every weak relation")
	}
}

// TestWeakCongruencePreservedByContexts samples Theorem 4: pairs related by
// ≈c stay weakly bisimilar under prefix, choice, parallel and restriction
// contexts.
func TestWeakCongruencePreservedByContexts(t *testing.T) {
	ch := newC()
	pairs := [][2]syntax.Proc{
		{syntax.Send(a, nil, syntax.TauP(syntax.SendN(c))), syntax.Send(a, nil, syntax.SendN(c))},
		{syntax.Choice(syntax.SendN(a), syntax.SendN(a)), syntax.SendN(a)},
		{syntax.Group(syntax.RecvN(c, x), syntax.PNil), syntax.RecvN(c, x)},
	}
	contexts := []func(syntax.Proc) syntax.Proc{
		func(p syntax.Proc) syntax.Proc { return syntax.Send(d, nil, p) },
		func(p syntax.Proc) syntax.Proc { return syntax.Choice(p, syntax.SendN(d)) },
		func(p syntax.Proc) syntax.Proc { return syntax.Group(p, syntax.RecvN(d, z)) },
		func(p syntax.Proc) syntax.Proc { return syntax.Restrict(p, "w") },
		func(p syntax.Proc) syntax.Proc { return syntax.If(a, b, p, syntax.SendN(d)) },
	}
	for i, pq := range pairs {
		ok, err := ch.Congruence(pq[0], pq[1], true)
		if err != nil {
			t.Fatalf("pair %d: %v", i, err)
		}
		if !ok {
			t.Fatalf("pair %d not ≈c: %s vs %s", i, syntax.String(pq[0]), syntax.String(pq[1]))
		}
		for j, ctx := range contexts {
			if !labelled(t, ch, ctx(pq[0]), ctx(pq[1]), true) {
				t.Errorf("pair %d context %d: ≈c broken by context", i, j)
			}
		}
	}
}

// TestWeakCongruenceNotImpliedByWeakBisim: the τ-law pair is ≈ but not ≈c,
// and a + context indeed separates it (the content of the ≈ vs ≈c gap).
func TestWeakCongruenceNotImpliedByWeakBisim(t *testing.T) {
	ch := newC()
	p := syntax.TauP(syntax.SendN(c))
	q := syntax.SendN(c)
	if !labelled(t, ch, p, q, true) {
		t.Fatal("τ.c̄ ≈ c̄ precondition failed")
	}
	ok, err := ch.Congruence(p, q, true)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("τ.c̄ ≈c c̄ must fail")
	}
	ctx := func(r syntax.Proc) syntax.Proc { return syntax.Choice(r, syntax.SendN(d)) }
	if labelled(t, ch, ctx(p), ctx(q), true) {
		t.Error("the + context must separate the τ-law pair")
	}
}

// TestWeakOneStepSampledSoundness: ≈+ ⊆ ≈ on random pairs (the weak analogue
// of the Remark 4 chain).
func TestWeakOneStepSampledSoundness(t *testing.T) {
	cfg := brand.Default()
	cfg.MaxDepth = 3
	g := brand.New(5150, cfg)
	ch := newC()
	found := 0
	for i := 0; i < 25; i++ {
		p := g.Term()
		q := g.Mutate(p)
		os, err := ch.OneStep(p, q, true)
		if err != nil {
			t.Fatal(err)
		}
		if !os {
			continue
		}
		found++
		if !labelled(t, ch, p, q, true) {
			t.Errorf("≈+ pair not ≈:\n p=%s\n q=%s", syntax.String(p), syntax.String(q))
		}
	}
	if found == 0 {
		t.Skip("no ≈+ pairs sampled (generator mix)")
	}
}

// TestWeakStrongWitnessConsistency: every witness pair's weak verdicts are
// implied by (at least as permissive as) the strong ones.
func TestWeakStrongWitnessConsistency(t *testing.T) {
	ch := newC()
	type rel func(p, q syntax.Proc, weak bool) (Result, error)
	rels := map[string]rel{
		"labelled": ch.Labelled,
		"barbed":   ch.Barbed,
		"step":     ch.Step,
	}
	pairs := [][2]syntax.Proc{
		{syntax.SendN(a, b), syntax.Send(a, []names.Name{b}, syntax.SendN(c, d))},
		{syntax.RecvN(a), syntax.RecvN(b)},
		{syntax.Choice(syntax.SendN(b), syntax.TauP(syntax.SendN(c))),
			syntax.Choice(syntax.SendN(b), syntax.Send(b, nil, syntax.SendN(c)))},
	}
	for name, r := range rels {
		for i, pq := range pairs {
			s, err := r(pq[0], pq[1], false)
			if err != nil {
				t.Fatal(err)
			}
			w, err := r(pq[0], pq[1], true)
			if err != nil {
				t.Fatal(err)
			}
			if s.Related && !w.Related {
				t.Errorf("%s pair %d: strong but not weak", name, i)
			}
		}
	}
}
