package equiv

import (
	"testing"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
	d names.Name = "d"
	x names.Name = "x"
	y names.Name = "y"
	z names.Name = "z"
)

func newC() *Checker { return NewChecker(nil) }

// verdict helpers -----------------------------------------------------------

func labelled(t *testing.T, ch *Checker, p, q syntax.Proc, weak bool) bool {
	t.Helper()
	r, err := ch.Labelled(p, q, weak)
	if err != nil {
		t.Fatalf("Labelled(%s, %s): %v", syntax.String(p), syntax.String(q), err)
	}
	return r.Related
}

func barbed(t *testing.T, ch *Checker, p, q syntax.Proc, weak bool) bool {
	t.Helper()
	r, err := ch.Barbed(p, q, weak)
	if err != nil {
		t.Fatalf("Barbed(%s, %s): %v", syntax.String(p), syntax.String(q), err)
	}
	return r.Related
}

func step(t *testing.T, ch *Checker, p, q syntax.Proc, weak bool) bool {
	t.Helper()
	r, err := ch.Step(p, q, weak)
	if err != nil {
		t.Fatalf("Step(%s, %s): %v", syntax.String(p), syntax.String(q), err)
	}
	return r.Related
}

func congruent(t *testing.T, ch *Checker, p, q syntax.Proc, weak bool) bool {
	t.Helper()
	ok, err := ch.Congruence(p, q, weak)
	if err != nil {
		t.Fatalf("Congruence(%s, %s): %v", syntax.String(p), syntax.String(q), err)
	}
	return ok
}

func oneStep(t *testing.T, ch *Checker, p, q syntax.Proc, weak bool) bool {
	t.Helper()
	ok, err := ch.OneStep(p, q, weak)
	if err != nil {
		t.Fatalf("OneStep(%s, %s): %v", syntax.String(p), syntax.String(q), err)
	}
	return ok
}

// ---- Lemmas 2, 4, 6: the structural laws (a)–(l) ---------------------------

// lawInstances returns concrete (p, q) pairs instantiating laws (b)–(l).
func lawInstances() [][2]syntax.Proc {
	p := syntax.Send(a, []names.Name{b}, syntax.RecvN(c, x)) // āb.c(x)
	q := syntax.TauP(syntax.SendN(b))                        // τ.b̄
	r := syntax.RecvN(a, y)                                  // a(y)
	nop := syntax.PNil
	return [][2]syntax.Proc{
		{syntax.Group(p, nop), p},                                                              // (b) p‖nil = p
		{syntax.Group(p, q), syntax.Group(q, p)},                                               // (c) commutativity ‖
		{syntax.Group(syntax.Group(p, q), r), syntax.Group(p, syntax.Group(q, r))},             // (d) assoc ‖
		{syntax.Choice(p, nop), p},                                                             // (e) p+nil = p
		{syntax.Choice(p, q), syntax.Choice(q, p)},                                             // (f) commutativity +
		{syntax.Choice(syntax.Choice(p, q), r), syntax.Choice(p, syntax.Choice(q, r))},         // (g) assoc +
		{syntax.Restrict(p, z), p},                                                             // (h) νz p = p, z ∉ fn(p)
		{syntax.Restrict(syntax.SendN(x, y), y, x), syntax.Restrict(syntax.SendN(x, y), x, y)}, // (i) νxνy = νyνx
		{syntax.Group(syntax.Restrict(syntax.SendN(x, a), x), q),
			syntax.Restrict(syntax.Group(syntax.SendN(x, a), q), x)}, // (j) scope extension ‖
		{syntax.Choice(syntax.Restrict(syntax.SendN(x, a), x), q),
			syntax.Restrict(syntax.Choice(syntax.SendN(x, a), q), x)}, // (k) scope extension +
		{syntax.If(b, c, syntax.Restrict(syntax.SendN(x, a), x), q),
			syntax.Restrict(syntax.If(b, c, syntax.SendN(x, a), q), x)}, // (l) scope extension match
	}
}

func TestLemma6LabelledLaws(t *testing.T) {
	ch := newC()
	for i, pq := range lawInstances() {
		if !labelled(t, ch, pq[0], pq[1], false) {
			t.Errorf("law %c: %s ~ %s failed", 'b'+rune(i), syntax.String(pq[0]), syntax.String(pq[1]))
		}
	}
}

func TestLemma2BarbedLaws(t *testing.T) {
	ch := newC()
	for i, pq := range lawInstances() {
		if !barbed(t, ch, pq[0], pq[1], false) {
			t.Errorf("law %c: %s ~b %s failed", 'b'+rune(i), syntax.String(pq[0]), syntax.String(pq[1]))
		}
	}
}

func TestLemma4StepLaws(t *testing.T) {
	ch := newC()
	for i, pq := range lawInstances() {
		if !step(t, ch, pq[0], pq[1], false) {
			t.Errorf("law %c: %s ~φ %s failed", 'b'+rune(i), syntax.String(pq[0]), syntax.String(pq[1]))
		}
	}
}

func TestAlphaConversionLawA(t *testing.T) {
	// (a): p =α q implies equivalence, all three relations.
	ch := newC()
	p := syntax.Recv(a, []names.Name{x}, syntax.SendN(x))
	q := syntax.Recv(a, []names.Name{y}, syntax.SendN(y))
	if !labelled(t, ch, p, q, false) || !barbed(t, ch, p, q, false) || !step(t, ch, p, q, false) {
		t.Error("alpha-equivalent terms must be related by every relation")
	}
}

// ---- Remark 1: ~b is not preserved by restriction --------------------------

func TestRemark1(t *testing.T) {
	ch := newC()
	p0 := syntax.SendN(a, b)
	q0 := syntax.Send(a, []names.Name{b}, syntax.SendN(c, d))
	if !barbed(t, ch, p0, q0, false) {
		t.Error("p0 ~b q0 expected (both only barb on a, no τ)")
	}
	np0 := syntax.Restrict(p0, a)
	nq0 := syntax.Restrict(q0, a)
	if barbed(t, ch, np0, nq0, false) {
		t.Error("νa p0 ≁b νa q0 expected (rule 6 reveals the difference)")
	}
	// The same pair also separates ~φ without any restriction: the step
	// relation follows outputs.
	if step(t, ch, p0, q0, false) {
		t.Error("p0 ≁φ q0 expected")
	}
	// And labelled bisimilarity distinguishes them directly.
	if labelled(t, ch, p0, q0, false) {
		t.Error("p0 ≁ q0 expected")
	}
}

// ---- Remark 2: ~φ is not preserved by ‖ nor by ν; ~b and ~φ incomparable ---

func TestRemark2StepNotPreservedByParallel(t *testing.T) {
	ch := newC()
	// p1 = b̄ + τ.c̄, q1 = b̄ + b̄.c̄, r1 = b + ā.
	p1 := syntax.Choice(syntax.SendN(b), syntax.TauP(syntax.SendN(c)))
	q1 := syntax.Choice(syntax.SendN(b), syntax.Send(b, nil, syntax.SendN(c)))
	r1 := syntax.Choice(syntax.RecvN(b), syntax.SendN(a))
	if !step(t, ch, p1, q1, false) {
		t.Fatal("p1 ~φ q1 expected")
	}
	if step(t, ch, syntax.Group(p1, r1), syntax.Group(q1, r1), false) {
		t.Error("p1‖r1 ≁φ q1‖r1 expected")
	}
	// The same witness shows ~φ ⊄ ~b: p1 has a τ that q1 cannot answer.
	if barbed(t, ch, p1, q1, false) {
		t.Error("p1 ≁b q1 expected")
	}
}

func TestRemark2StepNotPreservedByRestriction(t *testing.T) {
	ch := newC()
	// p2 = b̄a.ā, q2 = b̄c.ā.
	p2 := syntax.Send(b, []names.Name{a}, syntax.SendN(a))
	q2 := syntax.Send(b, []names.Name{c}, syntax.SendN(a))
	if !step(t, ch, p2, q2, false) {
		t.Fatal("p2 ~φ q2 expected (steps are label-blind)")
	}
	np2 := syntax.Restrict(p2, a)
	nq2 := syntax.Restrict(q2, a)
	if step(t, ch, np2, nq2, false) {
		t.Error("νa p2 ≁φ νa q2 expected")
	}
	// ~b ⊄ ~φ: the restricted pair is still strongly barbed bisimilar.
	if !barbed(t, ch, np2, nq2, false) {
		t.Error("νa p2 ~b νa q2 expected")
	}
}

// ---- Noisy inputs: the signature law of broadcast bisimilarity -------------

func TestNoisyInputLaw(t *testing.T) {
	ch := newC()
	// Input prefixes with inert continuations are invisible: a ~ b.
	pa := syntax.RecvN(a)
	pb := syntax.RecvN(b)
	if !labelled(t, ch, pa, pb, false) {
		t.Error("a ~ b expected for input prefixes (noisy clause)")
	}
	// Outputs are visible: ā ≁ b̄.
	if labelled(t, ch, syntax.SendN(a), syntax.SendN(b), false) {
		t.Error("ā ≁ b̄ expected")
	}
	// An input that changes observable behaviour is visible:
	// a(x).x̄ ≁ b(x).x̄.
	if labelled(t, ch, syntax.Recv(a, []names.Name{x}, syntax.SendN(x)),
		syntax.Recv(b, []names.Name{x}, syntax.SendN(x)), false) {
		t.Error("a(x).x̄ ≁ b(x).x̄ expected")
	}
}

// ---- Remark 3: ~ is not preserved by choice or substitution ----------------

func TestRemark3ChoiceNotPreserved(t *testing.T) {
	ch := newC()
	pa := syntax.RecvN(a)
	pb := syntax.RecvN(b)
	if !labelled(t, ch, pa, pb, false) {
		t.Fatal("precondition a ~ b failed")
	}
	ctx := syntax.SendN(c)
	if labelled(t, ch, syntax.Choice(pa, ctx), syntax.Choice(pb, ctx), false) {
		t.Error("a+c̄ ≁ b+c̄ expected: receiving on a kills the c̄ branch only on the left")
	}
}

func TestRemark3SubstitutionNotPreserved(t *testing.T) {
	ch := newC()
	// Expansion pair: p = x.y.c̄ + y.(x ‖ c̄), q = x ‖ y.c̄ (x, y inputs).
	p := syntax.Choice(
		syntax.Recv(x, nil, syntax.Recv(y, nil, syntax.SendN(c))),
		syntax.Recv(y, nil, syntax.Group(syntax.RecvN(x), syntax.SendN(c))),
	)
	q := syntax.Group(syntax.RecvN(x), syntax.Recv(y, nil, syntax.SendN(c)))
	if !labelled(t, ch, p, q, false) {
		t.Fatal("expansion law instance p ~ q failed")
	}
	// Under [x/y] the broadcast reaches both components of q at once.
	sub := names.Single(y, x)
	if labelled(t, ch, syntax.Apply(p, sub), syntax.Apply(q, sub), false) {
		t.Error("p[x/y] ≁ q[x/y] expected: joint reception distinguishes them")
	}
	// Consequently p and q are not congruent, though bisimilar.
	if congruent(t, ch, p, q, false) {
		t.Error("p ≁c q expected")
	}
}

// ---- Lemmas 8 and 9: ~ preserved by ν and ‖ --------------------------------

func TestLemma9ParallelPreservation(t *testing.T) {
	ch := newC()
	pa := syntax.RecvN(a)
	pb := syntax.RecvN(b)
	contexts := []syntax.Proc{
		syntax.SendN(c),
		syntax.TauP(syntax.SendN(d)),
		syntax.Recv(c, []names.Name{z}, syntax.SendN(z)),
	}
	for _, r := range contexts {
		if !labelled(t, ch, syntax.Group(pa, r), syntax.Group(pb, r), false) {
			t.Errorf("~ not preserved by ‖ with r = %s", syntax.String(r))
		}
	}
}

func TestLemma8RestrictionPreservation(t *testing.T) {
	ch := newC()
	pa := syntax.RecvN(a)
	pb := syntax.RecvN(b)
	if !labelled(t, ch, syntax.Restrict(pa, c), syntax.Restrict(pb, c), false) {
		t.Error("~ not preserved by restriction")
	}
	// A case where the restricted name occurs: νa(a) ~ νa(b)? The left
	// becomes inert (private input), the right still listens on b publicly —
	// and by noisiness both are ~ anyway.
	if !labelled(t, ch, syntax.Restrict(pa, a), syntax.Restrict(pb, a), false) {
		t.Error("expected νa.a ~ νa.b (both noisy-inert)")
	}
}

// ---- Lemmas 10 and 11: ~ implies ~b and ~φ ---------------------------------

func TestLabelledImpliesBarbedAndStep(t *testing.T) {
	ch := newC()
	pairs := lawInstances()
	pairs = append(pairs, [2]syntax.Proc{syntax.RecvN(a), syntax.RecvN(b)})
	for _, pq := range pairs {
		if !labelled(t, ch, pq[0], pq[1], false) {
			continue
		}
		if !barbed(t, ch, pq[0], pq[1], false) {
			t.Errorf("Lemma 10 violated: %s ~ %s but not ~b", syntax.String(pq[0]), syntax.String(pq[1]))
		}
		if !step(t, ch, pq[0], pq[1], false) {
			t.Errorf("Lemma 11 violated: %s ~ %s but not ~φ", syntax.String(pq[0]), syntax.String(pq[1]))
		}
	}
}

// ---- Section 6: bisimulation strictness example ----------------------------

func TestOutputChoiceDistribution(t *testing.T) {
	ch := newC()
	// ā.(b̄+c̄) and ā.b̄+ā.c̄ are not (even weakly) bisimilar — discussed in
	// the paper's conclusion as a possible over-discrimination of
	// bisimulation vis-à-vis testing preorders.
	p := syntax.Send(a, nil, syntax.Choice(syntax.SendN(b), syntax.SendN(c)))
	q := syntax.Choice(syntax.Send(a, nil, syntax.SendN(b)), syntax.Send(a, nil, syntax.SendN(c)))
	if labelled(t, ch, p, q, false) {
		t.Error("ā.(b̄+c̄) ≁ ā.b̄+ā.c̄ expected")
	}
	if labelled(t, ch, p, q, true) {
		t.Error("ā.(b̄+c̄) ≉ ā.b̄+ā.c̄ expected")
	}
}

// ---- Remark 4: ~c ⊊ ~+ ⊊ ~ --------------------------------------------------

func TestRemark4Strictness(t *testing.T) {
	ch := newC()
	// Second inclusion strict: a ~ b (inputs) but a ≁+ b (discard sets differ).
	pa := syntax.RecvN(a)
	pb := syntax.RecvN(b)
	if !labelled(t, ch, pa, pb, false) {
		t.Fatal("a ~ b precondition failed")
	}
	if oneStep(t, ch, pa, pb, false) {
		t.Error("a ≁+ b expected (b discards a, a does not)")
	}
	// First inclusion strict: the expansion pair is ~+ but not ~c.
	p := syntax.Choice(
		syntax.Recv(x, nil, syntax.Recv(y, nil, syntax.SendN(c))),
		syntax.Recv(y, nil, syntax.Group(syntax.RecvN(x), syntax.SendN(c))),
	)
	q := syntax.Group(syntax.RecvN(x), syntax.Recv(y, nil, syntax.SendN(c)))
	if !oneStep(t, ch, p, q, false) {
		t.Error("expansion pair should be ~+ related")
	}
	if congruent(t, ch, p, q, false) {
		t.Error("expansion pair must not be ~c related")
	}
}

// ---- Axiom (H): the noisy saturation law ------------------------------------

func TestAxiomHSoundness(t *testing.T) {
	ch := newC()
	// ā.c̄ ~c ā.(c̄ + a(x).c̄): the added input is inoffensive because the
	// continuation discards a and x is not free in it.
	lhs := syntax.Send(a, nil, syntax.SendN(c))
	rhs := syntax.Send(a, nil, syntax.Choice(syntax.SendN(c), syntax.Recv(a, []names.Name{x}, syntax.SendN(c))))
	if !congruent(t, ch, lhs, rhs, false) {
		t.Error("axiom (H) instance must be ~c")
	}
	// Without the (H) side condition — continuation listening on a — the
	// equation fails: ā.a(y).c̄ vs ā.(a(y).c̄ + a(x).a(y).c̄).
	lhs2 := syntax.Send(a, nil, syntax.Recv(a, []names.Name{y}, syntax.SendN(c)))
	rhs2 := syntax.Send(a, nil, syntax.Choice(
		syntax.Recv(a, []names.Name{y}, syntax.SendN(c)),
		syntax.Recv(a, []names.Name{x}, syntax.Recv(a, []names.Name{y}, syntax.SendN(c)))))
	if congruent(t, ch, lhs2, rhs2, false) {
		t.Error("violating (H)'s side condition must break the equation")
	}
}

// ---- Weak relations ----------------------------------------------------------

func TestWeakBasics(t *testing.T) {
	ch := newC()
	p := syntax.TauP(syntax.SendN(c))
	q := syntax.SendN(c)
	if !labelled(t, ch, p, q, true) {
		t.Error("τ.c̄ ≈ c̄ expected")
	}
	if labelled(t, ch, p, q, false) {
		t.Error("τ.c̄ ≁ c̄ expected")
	}
	if !barbed(t, ch, p, q, true) {
		t.Error("τ.c̄ ≈b c̄ expected")
	}
	if !step(t, ch, p, q, true) {
		t.Error("τ.c̄ ≈φ c̄ expected")
	}
	// τ.τ.p ≈ τ.p ≈ p
	if !labelled(t, ch, syntax.TauP(p), q, true) {
		t.Error("τ.τ.c̄ ≈ c̄ expected")
	}
}

func TestWeakCongruenceTauLaw(t *testing.T) {
	ch := newC()
	// τ.c̄ ≉+ c̄ (a τ must be answered by at least one τ), hence ≉c; this is
	// what keeps ≈c preserved by +.
	p := syntax.TauP(syntax.SendN(c))
	q := syntax.SendN(c)
	if oneStep(t, ch, p, q, true) {
		t.Error("τ.c̄ ≉+ c̄ expected")
	}
	// But ā.τ.c̄ ≈c ā.c̄ (τ under a prefix is absorbed).
	lp := syntax.Send(a, nil, p)
	lq := syntax.Send(a, nil, q)
	if !congruent(t, ch, lp, lq, true) {
		t.Error("ā.τ.c̄ ≈c ā.c̄ expected")
	}
	// The + context genuinely distinguishes τ.c̄ from c̄.
	if labelled(t, ch, syntax.Choice(p, syntax.SendN(d)), syntax.Choice(q, syntax.SendN(d)), true) {
		t.Error("τ.c̄+d̄ ≉ c̄+d̄ expected")
	}
}

// ---- Congruence positive cases ----------------------------------------------

func TestCongruencePositive(t *testing.T) {
	ch := newC()
	p := syntax.Send(a, []names.Name{b}, syntax.RecvN(c, x))
	cases := [][2]syntax.Proc{
		{syntax.Choice(p, p), p},                 // S2
		{syntax.Choice(p, syntax.PNil), p},       // S1
		{syntax.Group(p, syntax.PNil), p},        // P1
		{syntax.Restrict(p, z), p},               // unused restriction
		{syntax.If(a, a, p, syntax.SendN(d)), p}, // match true
	}
	for i, pq := range cases {
		if !congruent(t, ch, pq[0], pq[1], false) {
			t.Errorf("case %d: %s ~c %s expected", i, syntax.String(pq[0]), syntax.String(pq[1]))
		}
	}
	// Match with distinct free names is NOT congruent to its else-branch
	// unconditionally… unless the else IS the branch: (a=b)p,q ~c q only if
	// fusing a,b keeps them equal — here it fails:
	if congruent(t, ch, syntax.If(a, b, p, syntax.SendN(d)), syntax.SendN(d), false) {
		t.Error("(a=b)p,d̄ ≁c d̄ expected (σ fusing a,b exposes p)")
	}
	// But it is strongly bisimilar (identity substitution only).
	if !labelled(t, ch, syntax.If(a, b, p, syntax.SendN(d)), syntax.SendN(d), false) {
		t.Error("(a=b)p,d̄ ~ d̄ expected")
	}
}

// ---- Budget handling ---------------------------------------------------------

func TestBudgetError(t *testing.T) {
	ch := newC()
	ch.MaxPairs = 2
	p := syntax.Send(a, nil, syntax.Send(b, nil, syntax.Send(c, nil, syntax.SendN(d))))
	q := syntax.Send(a, nil, syntax.Send(b, nil, syntax.Send(c, nil, syntax.SendN(d, d))))
	if _, err := ch.Labelled(p, q, false); err == nil {
		t.Error("expected budget error")
	} else if _, ok := err.(ErrBudget); !ok {
		t.Errorf("wrong error type: %v", err)
	}
}
