package equiv

import (
	"bpi/internal/obs"
	"bpi/internal/syntax"
)

// arena is a per-worker interning front for the shared Store, used by the
// engine's work-stealing discovery pass. Each worker owns one arena, so the
// local cache needs no lock: repeat resolutions of a term the worker has
// already seen — by far the common case inside one region of the pair
// space — cost a map probe and zero shared-memory traffic. Misses fall
// through to the store's bulk path (one shard-lock visit per distinct shard
// per batch), and hit/miss accounting accumulates locally, flushed to the
// store's atomics every flushEvery resolutions and once at shutdown — the
// "bulk flush" half of the arena protocol. Arenas must not outlive their
// discovery pass: flush before reading store stats.
type arena struct {
	s     *Store
	cache map[string]*termInfo

	// Deferred counter deltas, flushed in bulk.
	hits, misses uint64
	pending      int

	// cFlushes counts flushes on the engine's tracer (nil-safe no-op).
	cFlushes *obs.Counter
}

// flushEvery bounds how stale the store's intern counters may run while a
// discovery worker is busy.
const flushEvery = 1024

func newArena(s *Store, cFlushes *obs.Counter) *arena {
	return &arena{s: s, cache: make(map[string]*termInfo), cFlushes: cFlushes}
}

// intern resolves one term: local cache first, store shard on miss.
func (a *arena) intern(p syntax.Proc) (*termInfo, error) {
	p = syntax.Simplify(p)
	k := syntax.Key(p)
	ti, ok := a.cache[k]
	if ok {
		a.hits++
	} else {
		var fresh bool
		ti, fresh = a.s.resolve(k, p)
		a.cache[k] = ti
		if fresh {
			a.misses++
		} else {
			a.hits++
		}
	}
	a.pending++
	a.maybeFlush()
	return a.s.ready(ti)
}

// internMany resolves a batch: locally cached terms are free, the rest go
// through the store's shard-grouped bulk path in one call.
func (a *arena) internMany(ps []syntax.Proc) ([]*termInfo, error) {
	out := make([]*termInfo, len(ps))
	var missIdx []int
	var missKeys []string
	var missProcs []syntax.Proc
	for i, p := range ps {
		sp := syntax.Simplify(p)
		k := syntax.Key(sp)
		if ti, ok := a.cache[k]; ok {
			a.hits++
			out[i] = ti
			continue
		}
		missIdx = append(missIdx, i)
		missKeys = append(missKeys, k)
		missProcs = append(missProcs, sp)
	}
	if len(missIdx) > 0 {
		tis, fresh := a.s.resolveBatch(missKeys, missProcs)
		for j, ti := range tis {
			a.cache[missKeys[j]] = ti
			out[missIdx[j]] = ti
		}
		a.misses += fresh
		a.hits += uint64(len(tis)) - fresh
	}
	a.pending += len(ps)
	a.maybeFlush()
	for _, ti := range out {
		if _, err := a.s.ready(ti); err != nil {
			return nil, err
		}
	}
	return out, nil
}

func (a *arena) maybeFlush() {
	if a.pending >= flushEvery {
		a.flush()
	}
}

// flush publishes the accumulated hit/miss deltas to the store in two
// atomic adds and resets the local tally. The local cache stays warm.
func (a *arena) flush() {
	if a.pending == 0 {
		return
	}
	a.s.addInternCounts(a.hits, a.misses)
	a.hits, a.misses, a.pending = 0, 0, 0
	a.cFlushes.Add(1)
}
