package lts

import (
	"strings"
	"testing"

	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
	x names.Name = "x"
	y names.Name = "y"
)

var sys = semantics.NewSystem(nil)

func explore(t *testing.T, p syntax.Proc, opt Options) *Graph {
	t.Helper()
	g, err := Explore(sys, []syntax.Proc{p}, opt)
	if err != nil {
		t.Fatalf("Explore: %v", err)
	}
	return g
}

func TestExploreLinear(t *testing.T) {
	// ā.b̄.c̄: 4 states, 3 edges.
	p := syntax.Send(a, nil, syntax.Send(b, nil, syntax.SendN(c)))
	g := explore(t, p, Options{})
	if g.NumStates() != 4 || g.NumEdges() != 3 {
		t.Fatalf("graph: %v", g)
	}
	if g.Truncated {
		t.Fatal("unexpected truncation")
	}
	if g.StateIndex(p) != g.Roots[0] {
		t.Fatal("root lookup failed")
	}
}

func TestExploreInputInstantiation(t *testing.T) {
	// a?(x).x̄: universe {a} + 1 fresh ⇒ two input instantiations.
	p := syntax.Recv(a, []names.Name{x}, syntax.SendN(x))
	g := explore(t, p, Options{})
	root := g.Roots[0]
	if len(g.Edges[root]) != 2 {
		t.Fatalf("expected 2 instantiated inputs, got %v", g.Edges[root])
	}
	// Successors: ā and w̄ (the reservoir name).
	subs := names.NewSet()
	for _, e := range g.Edges[root] {
		subs = subs.Add(e.Act.Objs[0])
	}
	if !subs.Contains(a) || subs.Len() != 2 {
		t.Fatalf("instantiation universe wrong: %v", subs)
	}
}

func TestExploreAutonomousOnly(t *testing.T) {
	p := syntax.Choice(syntax.RecvN(a, x), syntax.SendN(b))
	g := explore(t, p, Options{AutonomousOnly: true})
	root := g.Roots[0]
	if len(g.Edges[root]) != 1 || !g.Edges[root][0].Act.IsOutput() {
		t.Fatalf("autonomous edges: %v", g.Edges[root])
	}
	if !g.Barbs(root).Equal(names.NewSet(b)) {
		t.Fatalf("barbs: %v", g.Barbs(root))
	}
}

func TestExploreCycleIsFinite(t *testing.T) {
	// (rec A(x). x̄.A(x))(a) has one state and a self-loop.
	r := syntax.Rec{Id: "A", Params: []names.Name{x},
		Body: syntax.Send(x, nil, syntax.Call{Id: "A", Args: []names.Name{x}}),
		Args: []names.Name{a}}
	g := explore(t, r, Options{})
	if g.NumStates() != 1 || g.NumEdges() != 1 {
		t.Fatalf("cycle graph: %v", g)
	}
	if g.Edges[0][0].Dst != 0 {
		t.Fatal("self-loop missing")
	}
}

func TestExploreTruncation(t *testing.T) {
	// Counter: (rec A(x). τ.(x̄ | A(x)))(a) accumulates parallel outputs, so
	// its state space is genuinely infinite.
	r := syntax.Rec{Id: "A", Params: []names.Name{x},
		Body: syntax.TauP(syntax.Group(syntax.SendN(x), syntax.Call{Id: "A", Args: []names.Name{x}})),
		Args: []names.Name{a}}
	g := explore(t, r, Options{MaxStates: 16})
	if !g.Truncated {
		t.Fatalf("expected truncation: %v", g)
	}
	if g.NumStates() > 16 {
		t.Fatalf("budget exceeded: %v", g)
	}
}

func TestSuccessiveExtrusionsStayDistinct(t *testing.T) {
	// νz āz.νw āw.z̄: after two extrusions the two private names must not be
	// conflated — the final barb is on the *first* extruded name.
	p := syntax.Restrict(
		syntax.Send(a, []names.Name{"z"},
			syntax.Restrict(syntax.Send(a, []names.Name{"w"}, syntax.SendN("z")), "w")),
		"z")
	g := explore(t, p, Options{AutonomousOnly: true})
	// Walk: root --(^e)a!(e)--> s1 --(^e')a!(e')--> s2 --e!--> s3.
	s := g.Roots[0]
	var first names.Name
	for hop := 0; hop < 2; hop++ {
		if len(g.Edges[s]) != 1 {
			t.Fatalf("hop %d: edges %v", hop, g.Edges[s])
		}
		e := g.Edges[s]
		if hop == 0 {
			first = e[0].Act.Bound[0]
		} else if e[0].Act.Bound[0] == first {
			t.Fatalf("second extrusion reused the first name %q", first)
		}
		s = e[0].Dst
	}
	if barbs := g.Barbs(s); !barbs.Equal(names.NewSet(first)) {
		t.Fatalf("final barb %v, want {%s}", barbs, first)
	}
}

func TestParallelExplorationMatchesSequential(t *testing.T) {
	p := syntax.Group(
		syntax.Send(a, nil, syntax.SendN(b)),
		syntax.Recv(a, []names.Name{}, syntax.SendN(c)),
		syntax.TauP(syntax.RecvN(b)),
	)
	seq := explore(t, p, Options{})
	par := explore(t, p, Options{Workers: 4})
	if seq.NumStates() != par.NumStates() || seq.NumEdges() != par.NumEdges() {
		t.Fatalf("parallel explorer diverges: seq %v, par %v", seq, par)
	}
	// Same state set (keys).
	keys := map[string]bool{}
	for _, st := range seq.States {
		keys[st.Key] = true
	}
	for _, st := range par.States {
		if !keys[st.Key] {
			t.Fatalf("state %q only in parallel graph", st.Key)
		}
	}
}

func TestTauClosure(t *testing.T) {
	// τ.τ.ā: closure of root covers all three pre-output states.
	p := syntax.TauP(syntax.TauP(syntax.SendN(a)))
	g := explore(t, p, Options{})
	cl := g.TauClosure()
	if len(cl[g.Roots[0]]) != 3 {
		t.Fatalf("tau closure: %v", cl[g.Roots[0]])
	}
	// The final state's closure is itself.
	last := g.StateIndex(syntax.SendN(a))
	if len(cl[last]) != 1 {
		t.Fatalf("closure of output state: %v", cl[last])
	}
}

func TestMultiRootSharesStates(t *testing.T) {
	p := syntax.Send(a, nil, syntax.SendN(b))
	q := syntax.Send(c, nil, syntax.SendN(b))
	g, err := Explore(sys, []syntax.Proc{p, q}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if len(g.Roots) != 2 {
		t.Fatalf("roots: %v", g.Roots)
	}
	// b̄ and nil are shared: 2 roots + b̄ + nil = 4 states.
	if g.NumStates() != 4 {
		t.Fatalf("states: %v", g)
	}
}

func TestFreshReservoirValid(t *testing.T) {
	for _, n := range FreshReservoir(3) {
		if names.Valid(n) {
			t.Errorf("reservoir name %q must be reserved (non-user)", n)
		}
	}
}

func TestWriteDOT(t *testing.T) {
	p := syntax.Send(a, nil, syntax.SendN(b))
	g := explore(t, p, Options{})
	var buf strings.Builder
	if err := g.WriteDOT(&buf, 0); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, want := range []string{"digraph lts", "peripheries=2", "a!", "->"} {
		if !strings.Contains(out, want) {
			t.Errorf("DOT output missing %q:\n%s", want, out)
		}
	}
	// Truncation.
	var buf2 strings.Builder
	if err := g.WriteDOT(&buf2, 4); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf2.String(), "…") {
		t.Error("long labels not clipped")
	}
}
