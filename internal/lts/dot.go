package lts

import (
	"fmt"
	"io"
	"strings"

	"bpi/internal/syntax"
)

// WriteDOT renders the graph in Graphviz DOT format: states as nodes
// (roots doubled), transitions as labelled edges. Terms longer than
// maxLabel runes are truncated with an ellipsis (0 means 48).
func (g *Graph) WriteDOT(w io.Writer, maxLabel int) error {
	if maxLabel <= 0 {
		maxLabel = 48
	}
	if _, err := fmt.Fprintln(w, "digraph lts {"); err != nil {
		return err
	}
	fmt.Fprintln(w, `  rankdir=LR;`)
	fmt.Fprintln(w, `  node [shape=box, fontname="monospace", fontsize=10];`)
	roots := map[int]bool{}
	for _, r := range g.Roots {
		roots[r] = true
	}
	for i, st := range g.States {
		label := clip(stateLabel(st), maxLabel)
		shape := ""
		if roots[i] {
			shape = ", peripheries=2"
		}
		fmt.Fprintf(w, "  s%d [label=\"s%d: %s\"%s];\n", i, i, escape(label), shape)
	}
	for i, es := range g.Edges {
		for _, e := range es {
			fmt.Fprintf(w, "  s%d -> s%d [label=\"%s\"];\n", i, e.Dst, escape(e.Lab))
		}
	}
	_, err := fmt.Fprintln(w, "}")
	return err
}

func stateLabel(st State) string {
	return syntax.String(st.Proc)
}

func clip(s string, n int) string {
	r := []rune(s)
	if len(r) <= n {
		return s
	}
	return string(r[:n-1]) + "…"
}

func escape(s string) string {
	s = strings.ReplaceAll(s, `\`, `\\`)
	s = strings.ReplaceAll(s, `"`, `\"`)
	return s
}
