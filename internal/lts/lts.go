// Package lts builds explicit, finite labelled transition graphs from
// bπ-calculus terms by exhaustively grounding the symbolic early semantics
// over a finite name universe.
//
// Finite-universe soundness. Early input transitions range over a countable
// set of names; for deciding the bisimilarities of the paper between p and q
// it suffices to instantiate inputs with (i) the free names of the states in
// play and (ii) a bounded reservoir of fresh names (one per simultaneously
// open input position), because any further fresh name is related to the
// reservoir names by an injective renaming, and bisimilarity is preserved by
// injective renamings (Lemma 18 of the paper). Extruded bound-output names
// are canonicalised jointly with their target states and join the universe
// of the successor state via its free names.
package lts

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/obs"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
	"bpi/internal/tprog"
	"bpi/internal/ws"
)

// Edge is a ground transition to the state with index Dst. Lab is the
// canonical rendering of Act used for label comparison (bound output names
// are pre-canonicalised, so syntactically different extrusions compare equal
// exactly when alpha-equivalent).
type Edge struct {
	Act actions.Act
	Lab string
	Dst int
}

// State is an explored process state.
type State struct {
	Proc syntax.Proc
	Key  string
}

// Graph is an explicit LTS over interned states.
type Graph struct {
	States []State
	Edges  [][]Edge
	// Roots holds the state indices of the exploration roots, in input order.
	Roots []int
	// Universe is the base name universe used for input instantiation.
	Universe []names.Name
	// Truncated reports that a budget stopped the exploration before the
	// reachable set was exhausted; equivalence verdicts computed on a
	// truncated graph are not conclusive.
	Truncated bool
	index     map[string]int
}

// Options configures exploration.
type Options struct {
	// Universe is the base set of names used to instantiate inputs. When
	// empty, the free names of the roots are used. Fresh reservoir names are
	// appended according to FreshNames.
	Universe []names.Name
	// FreshNames is the number of reservoir names added to the universe
	// (default 1).
	FreshNames int
	// MaxStates bounds the number of explored states (default 8192).
	MaxStates int
	// DisableSimplify turns off ~c-sound interning via syntax.Simplify
	// (enabled by default; disable for debugging only — verdicts agree).
	DisableSimplify bool
	// Workers sets the number of concurrent exploration workers (default 1;
	// >1 adds a work-stealing discovery pass ahead of the deterministic
	// interning replay — the graph is identical at every worker count).
	Workers int
	// AutonomousOnly restricts the graph to autonomous moves (τ and
	// outputs), skipping input instantiation entirely. Barbed and step
	// bisimilarity are decided on such graphs; they never inspect input
	// transitions.
	AutonomousOnly bool
	// Compiled switches ground successor computation to compiled transition
	// programs (internal/tprog). The resulting graph is bit-identical to the
	// interpreted build at every worker count; compilation failures surface
	// as the same errors the interpreter reports.
	Compiled bool
	// Progs optionally supplies a shared transition-program cache for
	// Compiled mode, so repeated explorations reuse compiled units. Its
	// definition environment should match sys. When nil, a private cache
	// over sys is created per Explore call.
	Progs *tprog.Cache
	// Obs, when non-nil, receives an lts.explore span and the counters
	// lts.states, lts.edges and (parallel exploration) lts.steals,
	// lts.prebuilt_states.
	Obs *obs.Tracer
}

func (o Options) maxStates() int {
	if o.MaxStates <= 0 {
		return 8192
	}
	return o.MaxStates
}

func (o Options) freshNames() int {
	if o.FreshNames <= 0 {
		return 1
	}
	return o.FreshNames
}

// FreshReservoir returns the deterministic reservoir names used to probe
// inputs with "new" names: ✶1, ✶2, … They are valid channel names that user
// terms never contain (they carry the reserved marker).
func FreshReservoir(n int) []names.Name {
	out := make([]names.Name, n)
	for i := range out {
		out[i] = names.Name(fmt.Sprintf("w%s%d", names.FreshMarker, i+1))
	}
	return out
}

// stepper computes ground transition lists either through the interpreter
// or through compiled transition programs. Both sources share the broadcast
// composition core, so the lists are bit-identical.
type stepper struct {
	sys *semantics.System
	tc  *tprog.Cache // non-nil in Compiled mode
}

func (s stepper) steps(p syntax.Proc) ([]semantics.Trans, error) {
	if s.tc != nil {
		if ts, err := s.tc.Transitions(p); err == nil {
			return ts, nil
		}
		// Compile failure (unguarded recursion, unfold budget): fall back so
		// the caller sees exactly the interpreted error surface, matching the
		// equiv store's contract.
	}
	return s.sys.Steps(p)
}

func (o Options) stepper(sys *semantics.System) stepper {
	if !o.Compiled {
		return stepper{sys: sys}
	}
	tc := o.Progs
	if tc == nil {
		tc = tprog.NewCache(sys)
	}
	return stepper{sys: sys, tc: tc}
}

// Explore builds the graph reachable from the given roots.
func Explore(sys *semantics.System, roots []syntax.Proc, opt Options) (*Graph, error) {
	span := opt.Obs.Span("lts.explore")
	defer span.End()
	st := opt.stepper(sys)
	g := &Graph{index: map[string]int{}}
	base := names.NewSet(opt.Universe...)
	if len(opt.Universe) == 0 {
		for _, r := range roots {
			base = base.AddAll(syntax.FreeNames(r))
		}
	}
	for _, w := range FreshReservoir(opt.freshNames()) {
		base = base.Add(w)
	}
	g.Universe = base.Sorted()

	internKeyed := func(p syntax.Proc, k string) (int, bool) {
		if i, ok := g.index[k]; ok {
			return i, false
		}
		i := len(g.States)
		g.States = append(g.States, State{p, k})
		g.Edges = append(g.Edges, nil)
		g.index[k] = i
		return i, true
	}
	intern := func(p syntax.Proc) (int, bool) {
		if !opt.DisableSimplify {
			p = syntax.Simplify(p)
		}
		return internKeyed(p, syntax.Key(p))
	}

	var frontier []int
	for _, r := range roots {
		i, fresh := intern(r)
		g.Roots = append(g.Roots, i)
		if fresh {
			frontier = append(frontier, i)
		}
	}

	// With workers > 1, a work-stealing discovery pass precomputes ground
	// successor lists per state key; the replay below is the sequential
	// algorithm either way, so the graph — state order, edges, truncation
	// point — is identical at every worker count.
	var pre *stateCache
	if opt.Workers > 1 && len(frontier) > 0 {
		pre = discover(st, g, frontier, opt)
	}
	err := exploreSequential(st, g, frontier, opt, internKeyed, pre)
	// End-of-run totals: zero engine overhead, worker-count independent.
	opt.Obs.Count("lts.states", int64(g.NumStates()))
	opt.Obs.Count("lts.edges", int64(g.NumEdges()))
	return g, err
}

// groundEdges computes the ground successor list of state p: τ and output
// transitions as-is (outputs canonicalised), inputs instantiated over
// universe ∪ fn(p).
func groundEdges(st stepper, p syntax.Proc, universe []names.Name, autonomousOnly bool) ([]semantics.Trans, error) {
	ts, err := st.steps(p)
	if err != nil {
		return nil, err
	}
	u := names.NewSet(universe...).AddAll(syntax.FreeNames(p)).Sorted()
	var out []semantics.Trans
	for _, t := range ts {
		switch t.Act.Kind {
		case actions.Tau:
			out = append(out, t)
		case actions.Out:
			act, tgt := semantics.CanonTrans(t.Act, t.Target)
			out = append(out, semantics.Trans{Act: act, Target: tgt})
		case actions.In:
			if autonomousOnly {
				continue
			}
			k := len(t.Act.Objs)
			forEachTuple(u, k, func(tuple []names.Name) {
				// The enumerator reuses its tuple buffer; copy before storing.
				recv := append([]names.Name(nil), tuple...)
				act, tgt := semantics.Instantiate(t, recv)
				out = append(out, semantics.Trans{Act: act, Target: tgt})
			})
		}
	}
	return out, nil
}

// forEachTuple enumerates u^k in lexicographic order.
func forEachTuple(u []names.Name, k int, f func([]names.Name)) {
	if k == 0 {
		f(nil)
		return
	}
	idx := make([]int, k)
	tuple := make([]names.Name, k)
	for {
		for i, j := range idx {
			tuple[i] = u[j]
		}
		f(tuple)
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(u) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

// stateBuilt is one state's discovered successor data: its ground
// transitions plus the pre-simplified target of each and its canonical key,
// so the replay pass never recomputes Simplify/Key for prebuilt states.
type stateBuilt struct {
	ts    []semantics.Trans
	procs []syntax.Proc
	keys  []string
	err   error
}

// stateCache hands discovery results to the replay pass, keyed by state key
// and sharded so discovery workers rarely contend. claim doubles as the
// discovery-side dedup (nil placeholder until the build is put).
type stateCache struct {
	shards [64]struct {
		mu sync.Mutex
		m  map[string]*stateBuilt
	}
}

func newStateCache() *stateCache {
	sc := &stateCache{}
	for i := range sc.shards {
		sc.shards[i].m = make(map[string]*stateBuilt)
	}
	return sc
}

func (sc *stateCache) shardOf(k string) int {
	h := uint32(2166136261)
	for i := 0; i < len(k); i++ {
		h ^= uint32(k[i])
		h *= 16777619
	}
	return int(h % 64)
}

func (sc *stateCache) claim(k string) bool {
	sh := &sc.shards[sc.shardOf(k)]
	sh.mu.Lock()
	_, seen := sh.m[k]
	if !seen {
		sh.m[k] = nil
	}
	sh.mu.Unlock()
	return !seen
}

func (sc *stateCache) put(k string, b *stateBuilt) {
	sh := &sc.shards[sc.shardOf(k)]
	sh.mu.Lock()
	sh.m[k] = b
	sh.mu.Unlock()
}

func (sc *stateCache) take(k string) *stateBuilt {
	if sc == nil {
		return nil
	}
	sh := &sc.shards[sc.shardOf(k)]
	sh.mu.Lock()
	b := sh.m[k]
	sh.mu.Unlock()
	return b
}

// buildState computes one state's stateBuilt (pure w.r.t. the graph).
func buildState(st stepper, p syntax.Proc, g *Graph, opt Options) *stateBuilt {
	b := &stateBuilt{}
	b.ts, b.err = groundEdges(st, p, g.Universe, opt.AutonomousOnly)
	if b.err != nil {
		return b
	}
	b.procs = make([]syntax.Proc, len(b.ts))
	b.keys = make([]string, len(b.ts))
	for i, t := range b.ts {
		tp := t.Target
		if !opt.DisableSimplify {
			tp = syntax.Simplify(tp)
		}
		b.procs[i] = tp
		b.keys[i] = syntax.Key(tp)
	}
	return b
}

// discover is the work-stealing discovery pass: persistent workers race over
// the reachable state space, caching each state's ground successors. Purely
// an accelerator for the replay — it may stop early (first error, state
// budget) or miss states without affecting the resulting graph.
func discover(st stepper, g *Graph, frontier []int, opt Options) *stateCache {
	type item struct {
		proc syntax.Proc
		key  string
	}
	cache := newStateCache()
	maxClaims := int64(opt.maxStates())
	var claimed atomic.Int64
	var pool *ws.Pool[item]
	pool = ws.NewPool(opt.Workers, func(w int, it item) {
		b := buildState(st, it.proc, g, opt)
		cache.put(it.key, b)
		if b.err != nil {
			// Replay will rediscover the error at the deterministic point;
			// further discovery is wasted work.
			pool.Stop()
			return
		}
		var batch []item
		for i, k := range b.keys {
			if !cache.claim(k) {
				continue
			}
			if claimed.Add(1) > maxClaims {
				pool.Stop()
				return
			}
			batch = append(batch, item{b.procs[i], k})
		}
		pool.Push(w, batch...)
	})
	seeds := make([]item, 0, len(frontier))
	for _, i := range frontier {
		st := g.States[i]
		if cache.claim(st.Key) {
			claimed.Add(1)
			seeds = append(seeds, item{st.Proc, st.Key})
		}
	}
	pool.Run(seeds)
	ps := pool.Stats()
	opt.Obs.Count("lts.steals", ps.Steals)
	opt.Obs.Count("lts.prebuilt_states", ps.Processed)
	return cache
}

// exploreSequential is the authoritative pass: strictly FIFO over the
// frontier, interning in edge order — the graph shape depends only on this
// loop. pre (nil when Workers ≤ 1) supplies prebuilt successor lists; states
// the discovery pass missed are built inline.
func exploreSequential(st stepper, g *Graph, frontier []int, opt Options,
	internKeyed func(syntax.Proc, string) (int, bool), pre *stateCache) error {
	max := opt.maxStates()
	for len(frontier) > 0 {
		i := frontier[0]
		frontier = frontier[1:]
		b := pre.take(g.States[i].Key)
		if b == nil {
			b = buildState(st, g.States[i].Proc, g, opt)
		}
		if b.err != nil {
			return b.err
		}
		for ei, t := range b.ts {
			if len(g.States) >= max {
				g.Truncated = true
				return nil
			}
			j, fresh := internKeyed(b.procs[ei], b.keys[ei])
			g.Edges[i] = append(g.Edges[i], Edge{t.Act, t.Act.String(), j})
			if fresh {
				frontier = append(frontier, j)
			}
		}
		dedupEdges(&g.Edges[i])
	}
	return nil
}

// dedupEdges removes duplicate (label, destination) pairs and sorts edges
// deterministically.
func dedupEdges(es *[]Edge) {
	seen := map[string]bool{}
	out := (*es)[:0]
	for _, e := range *es {
		k := e.Lab + "→" + itoa(e.Dst)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lab != out[j].Lab {
			return out[i].Lab < out[j].Lab
		}
		return out[i].Dst < out[j].Dst
	})
	*es = out
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

// NumStates returns the number of interned states.
func (g *Graph) NumStates() int { return len(g.States) }

// NumEdges returns the total number of ground edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.Edges {
		n += len(es)
	}
	return n
}

// StateIndex returns the index of the interned representative of p, or -1.
func (g *Graph) StateIndex(p syntax.Proc) int {
	k := syntax.Key(syntax.Simplify(p))
	if i, ok := g.index[k]; ok {
		return i
	}
	// The graph may have been built with simplification disabled.
	if i, ok := g.index[syntax.Key(p)]; ok {
		return i
	}
	return -1
}

// Barbs returns the set of strong barbs of state i: the subjects of its
// output transitions (p ↓a).
func (g *Graph) Barbs(i int) names.Set {
	out := make(names.Set)
	for _, e := range g.Edges[i] {
		if e.Act.IsOutput() {
			out = out.Add(e.Act.Subj)
		}
	}
	return out
}

// TauClosure returns, for every state, the set of states reachable by τ*
// (including itself), as sorted index slices.
func (g *Graph) TauClosure() [][]int {
	n := len(g.States)
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		seen := map[int]bool{i: true}
		stack := []int{i}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Edges[s] {
				if e.Act.IsTau() && !seen[e.Dst] {
					seen[e.Dst] = true
					stack = append(stack, e.Dst)
				}
			}
		}
		idx := make([]int, 0, len(seen))
		for s := range seen {
			idx = append(idx, s)
		}
		sort.Ints(idx)
		out[i] = idx
	}
	return out
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("lts.Graph{states: %d, edges: %d, truncated: %v}", g.NumStates(), g.NumEdges(), g.Truncated)
}
