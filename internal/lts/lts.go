// Package lts builds explicit, finite labelled transition graphs from
// bπ-calculus terms by exhaustively grounding the symbolic early semantics
// over a finite name universe.
//
// Finite-universe soundness. Early input transitions range over a countable
// set of names; for deciding the bisimilarities of the paper between p and q
// it suffices to instantiate inputs with (i) the free names of the states in
// play and (ii) a bounded reservoir of fresh names (one per simultaneously
// open input position), because any further fresh name is related to the
// reservoir names by an injective renaming, and bisimilarity is preserved by
// injective renamings (Lemma 18 of the paper). Extruded bound-output names
// are canonicalised jointly with their target states and join the universe
// of the successor state via its free names.
package lts

import (
	"fmt"
	"sort"
	"sync"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/obs"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Edge is a ground transition to the state with index Dst. Lab is the
// canonical rendering of Act used for label comparison (bound output names
// are pre-canonicalised, so syntactically different extrusions compare equal
// exactly when alpha-equivalent).
type Edge struct {
	Act actions.Act
	Lab string
	Dst int
}

// State is an explored process state.
type State struct {
	Proc syntax.Proc
	Key  string
}

// Graph is an explicit LTS over interned states.
type Graph struct {
	States []State
	Edges  [][]Edge
	// Roots holds the state indices of the exploration roots, in input order.
	Roots []int
	// Universe is the base name universe used for input instantiation.
	Universe []names.Name
	// Truncated reports that a budget stopped the exploration before the
	// reachable set was exhausted; equivalence verdicts computed on a
	// truncated graph are not conclusive.
	Truncated bool
	index     map[string]int
}

// Options configures exploration.
type Options struct {
	// Universe is the base set of names used to instantiate inputs. When
	// empty, the free names of the roots are used. Fresh reservoir names are
	// appended according to FreshNames.
	Universe []names.Name
	// FreshNames is the number of reservoir names added to the universe
	// (default 1).
	FreshNames int
	// MaxStates bounds the number of explored states (default 8192).
	MaxStates int
	// DisableSimplify turns off ~c-sound interning via syntax.Simplify
	// (enabled by default; disable for debugging only — verdicts agree).
	DisableSimplify bool
	// Workers sets the number of concurrent exploration workers
	// (default 1; >1 uses a parallel frontier).
	Workers int
	// AutonomousOnly restricts the graph to autonomous moves (τ and
	// outputs), skipping input instantiation entirely. Barbed and step
	// bisimilarity are decided on such graphs; they never inspect input
	// transitions.
	AutonomousOnly bool
	// Obs, when non-nil, receives an lts.explore span and the counters
	// lts.states, lts.edges and (parallel exploration) lts.waves.
	Obs *obs.Tracer
}

func (o Options) maxStates() int {
	if o.MaxStates <= 0 {
		return 8192
	}
	return o.MaxStates
}

func (o Options) freshNames() int {
	if o.FreshNames <= 0 {
		return 1
	}
	return o.FreshNames
}

// FreshReservoir returns the deterministic reservoir names used to probe
// inputs with "new" names: ✶1, ✶2, … They are valid channel names that user
// terms never contain (they carry the reserved marker).
func FreshReservoir(n int) []names.Name {
	out := make([]names.Name, n)
	for i := range out {
		out[i] = names.Name(fmt.Sprintf("w%s%d", names.FreshMarker, i+1))
	}
	return out
}

// Explore builds the graph reachable from the given roots.
func Explore(sys *semantics.System, roots []syntax.Proc, opt Options) (*Graph, error) {
	span := opt.Obs.Span("lts.explore")
	defer span.End()
	g := &Graph{index: map[string]int{}}
	base := names.NewSet(opt.Universe...)
	if len(opt.Universe) == 0 {
		for _, r := range roots {
			base = base.AddAll(syntax.FreeNames(r))
		}
	}
	for _, w := range FreshReservoir(opt.freshNames()) {
		base = base.Add(w)
	}
	g.Universe = base.Sorted()

	intern := func(p syntax.Proc) (int, bool) {
		if !opt.DisableSimplify {
			p = syntax.Simplify(p)
		}
		k := syntax.Key(p)
		if i, ok := g.index[k]; ok {
			return i, false
		}
		i := len(g.States)
		g.States = append(g.States, State{p, k})
		g.Edges = append(g.Edges, nil)
		g.index[k] = i
		return i, true
	}

	var frontier []int
	for _, r := range roots {
		i, fresh := intern(r)
		g.Roots = append(g.Roots, i)
		if fresh {
			frontier = append(frontier, i)
		}
	}

	workers := opt.Workers
	var err error
	if workers <= 1 {
		err = exploreSequential(sys, g, frontier, opt, intern)
	} else {
		err = exploreParallel(sys, g, frontier, opt, workers)
	}
	// End-of-run totals: zero engine overhead, and identical between the
	// sequential and parallel explorers (same interning order).
	opt.Obs.Count("lts.states", int64(g.NumStates()))
	opt.Obs.Count("lts.edges", int64(g.NumEdges()))
	return g, err
}

// groundEdges computes the ground successor list of state p: τ and output
// transitions as-is (outputs canonicalised), inputs instantiated over
// universe ∪ fn(p).
func groundEdges(sys *semantics.System, p syntax.Proc, universe []names.Name, autonomousOnly bool) ([]semantics.Trans, error) {
	ts, err := sys.Steps(p)
	if err != nil {
		return nil, err
	}
	u := names.NewSet(universe...).AddAll(syntax.FreeNames(p)).Sorted()
	var out []semantics.Trans
	for _, t := range ts {
		switch t.Act.Kind {
		case actions.Tau:
			out = append(out, t)
		case actions.Out:
			act, tgt := semantics.CanonTrans(t.Act, t.Target)
			out = append(out, semantics.Trans{Act: act, Target: tgt})
		case actions.In:
			if autonomousOnly {
				continue
			}
			k := len(t.Act.Objs)
			forEachTuple(u, k, func(tuple []names.Name) {
				// The enumerator reuses its tuple buffer; copy before storing.
				recv := append([]names.Name(nil), tuple...)
				act, tgt := semantics.Instantiate(t, recv)
				out = append(out, semantics.Trans{Act: act, Target: tgt})
			})
		}
	}
	return out, nil
}

// forEachTuple enumerates u^k in lexicographic order.
func forEachTuple(u []names.Name, k int, f func([]names.Name)) {
	if k == 0 {
		f(nil)
		return
	}
	idx := make([]int, k)
	tuple := make([]names.Name, k)
	for {
		for i, j := range idx {
			tuple[i] = u[j]
		}
		f(tuple)
		i := k - 1
		for ; i >= 0; i-- {
			idx[i]++
			if idx[i] < len(u) {
				break
			}
			idx[i] = 0
		}
		if i < 0 {
			return
		}
	}
}

func exploreSequential(sys *semantics.System, g *Graph, frontier []int, opt Options,
	intern func(syntax.Proc) (int, bool)) error {
	max := opt.maxStates()
	for len(frontier) > 0 {
		i := frontier[0]
		frontier = frontier[1:]
		ts, err := groundEdges(sys, g.States[i].Proc, g.Universe, opt.AutonomousOnly)
		if err != nil {
			return err
		}
		for _, t := range ts {
			if len(g.States) >= max {
				g.Truncated = true
				return nil
			}
			j, fresh := intern(t.Target)
			g.Edges[i] = append(g.Edges[i], Edge{t.Act, t.Act.String(), j})
			if fresh {
				frontier = append(frontier, j)
			}
		}
		dedupEdges(&g.Edges[i])
	}
	return nil
}

// exploreParallel runs a level-synchronised parallel BFS: each frontier level
// is partitioned across workers that compute successor lists independently;
// interning (the only shared mutation) happens under a mutex in the
// coordinator, keeping the graph deterministic given the level order.
func exploreParallel(sys *semantics.System, g *Graph, frontier []int, opt Options, workers int) error {
	max := opt.maxStates()
	type result struct {
		src int
		ts  []semantics.Trans
		err error
	}
	cWaves := opt.Obs.Counter("lts.waves")
	for len(frontier) > 0 {
		cWaves.Add(1)
		results := make([]result, len(frontier))
		var wg sync.WaitGroup
		sem := make(chan struct{}, workers)
		for fi, si := range frontier {
			wg.Add(1)
			go func(fi, si int) {
				defer wg.Done()
				sem <- struct{}{}
				defer func() { <-sem }()
				ts, err := groundEdges(sys, g.States[si].Proc, g.Universe, opt.AutonomousOnly)
				results[fi] = result{si, ts, err}
			}(fi, si)
		}
		wg.Wait()
		var next []int
		for _, r := range results {
			if r.err != nil {
				return r.err
			}
			for _, t := range r.ts {
				if len(g.States) >= max {
					g.Truncated = true
					return nil
				}
				p := t.Target
				if !opt.DisableSimplify {
					p = syntax.Simplify(p)
				}
				k := syntax.Key(p)
				j, ok := g.index[k]
				if !ok {
					j = len(g.States)
					g.States = append(g.States, State{p, k})
					g.Edges = append(g.Edges, nil)
					g.index[k] = j
					next = append(next, j)
				}
				g.Edges[r.src] = append(g.Edges[r.src], Edge{t.Act, t.Act.String(), j})
			}
			dedupEdges(&g.Edges[r.src])
		}
		frontier = next
	}
	return nil
}

// dedupEdges removes duplicate (label, destination) pairs and sorts edges
// deterministically.
func dedupEdges(es *[]Edge) {
	seen := map[string]bool{}
	out := (*es)[:0]
	for _, e := range *es {
		k := e.Lab + "→" + itoa(e.Dst)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Lab != out[j].Lab {
			return out[i].Lab < out[j].Lab
		}
		return out[i].Dst < out[j].Dst
	})
	*es = out
}

func itoa(i int) string { return fmt.Sprintf("%d", i) }

// NumStates returns the number of interned states.
func (g *Graph) NumStates() int { return len(g.States) }

// NumEdges returns the total number of ground edges.
func (g *Graph) NumEdges() int {
	n := 0
	for _, es := range g.Edges {
		n += len(es)
	}
	return n
}

// StateIndex returns the index of the interned representative of p, or -1.
func (g *Graph) StateIndex(p syntax.Proc) int {
	k := syntax.Key(syntax.Simplify(p))
	if i, ok := g.index[k]; ok {
		return i
	}
	// The graph may have been built with simplification disabled.
	if i, ok := g.index[syntax.Key(p)]; ok {
		return i
	}
	return -1
}

// Barbs returns the set of strong barbs of state i: the subjects of its
// output transitions (p ↓a).
func (g *Graph) Barbs(i int) names.Set {
	out := make(names.Set)
	for _, e := range g.Edges[i] {
		if e.Act.IsOutput() {
			out = out.Add(e.Act.Subj)
		}
	}
	return out
}

// TauClosure returns, for every state, the set of states reachable by τ*
// (including itself), as sorted index slices.
func (g *Graph) TauClosure() [][]int {
	n := len(g.States)
	out := make([][]int, n)
	for i := 0; i < n; i++ {
		seen := map[int]bool{i: true}
		stack := []int{i}
		for len(stack) > 0 {
			s := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			for _, e := range g.Edges[s] {
				if e.Act.IsTau() && !seen[e.Dst] {
					seen[e.Dst] = true
					stack = append(stack, e.Dst)
				}
			}
		}
		idx := make([]int, 0, len(seen))
		for s := range seen {
			idx = append(idx, s)
		}
		sort.Ints(idx)
		out[i] = idx
	}
	return out
}

// String summarises the graph.
func (g *Graph) String() string {
	return fmt.Sprintf("lts.Graph{states: %d, edges: %d, truncated: %v}", g.NumStates(), g.NumEdges(), g.Truncated)
}
