package lts_test

import (
	"reflect"
	"testing"

	"bpi/internal/lts"
	"bpi/internal/protocols"
	"bpi/internal/semantics"
	"bpi/internal/stress"
	"bpi/internal/syntax"
	"bpi/internal/tprog"
)

// graphsEqual compares two graphs field by field: same states in the same
// order (procs and keys), same edges, roots, universe, truncation.
func graphsEqual(t *testing.T, name string, gi, gc *lts.Graph) {
	t.Helper()
	if gi.NumStates() != gc.NumStates() {
		t.Fatalf("%s: state counts differ: interpreted %d, compiled %d", name, gi.NumStates(), gc.NumStates())
	}
	for i := range gi.States {
		if gi.States[i].Key != gc.States[i].Key || !syntax.Equal(gi.States[i].Proc, gc.States[i].Proc) {
			t.Fatalf("%s: state %d differs: interpreted %s, compiled %s",
				name, i, syntax.String(gi.States[i].Proc), syntax.String(gc.States[i].Proc))
		}
	}
	if !reflect.DeepEqual(gi.Edges, gc.Edges) {
		t.Fatalf("%s: edge lists differ", name)
	}
	if !reflect.DeepEqual(gi.Roots, gc.Roots) || !reflect.DeepEqual(gi.Universe, gc.Universe) {
		t.Fatalf("%s: roots/universe differ", name)
	}
	if gi.Truncated != gc.Truncated {
		t.Fatalf("%s: truncation differs: interpreted %v, compiled %v", name, gi.Truncated, gc.Truncated)
	}
}

// TestCompiledGraphIdentical requires lts.Explore with Compiled to produce a
// bit-identical graph on protocol and stress terms, at workers 1 and 4,
// both full and autonomous-only, sharing one program cache across builds.
func TestCompiledGraphIdentical(t *testing.T) {
	sys := semantics.NewSystem(nil)
	tc := tprog.NewCache(sys)
	type tcase struct {
		name  string
		roots []syntax.Proc
	}
	var cases []tcase
	for _, sc := range protocols.Catalogue()[:8] {
		cases = append(cases, tcase{sc.Name, []syntax.Proc{sc.Impl, sc.Spec}})
	}
	for _, cfg := range stress.Corpus()[:2] {
		cases = append(cases, tcase{cfg.Name, []syntax.Proc{cfg.P, cfg.Q}})
	}
	for _, c := range cases {
		for _, workers := range []int{1, 4} {
			for _, auto := range []bool{false, true} {
				opt := lts.Options{MaxStates: 4000, Workers: workers, AutonomousOnly: auto}
				gi, ierr := lts.Explore(sys, c.roots, opt)
				opt.Compiled, opt.Progs = true, tc
				gc, cerr := lts.Explore(sys, c.roots, opt)
				if ierr != nil || cerr != nil {
					t.Fatalf("%s: explore errors: interpreted %v, compiled %v", c.name, ierr, cerr)
				}
				graphsEqual(t, c.name, gi, gc)
			}
		}
	}
	if st := tc.Stats(); st.Units == 0 || st.Hits == 0 {
		t.Fatalf("shared program cache unused across builds: %+v", st)
	}
}

// TestCompiledTruncationIdentical pins that a state budget truncates the
// compiled build at exactly the same point as the interpreted one.
func TestCompiledTruncationIdentical(t *testing.T) {
	cfg := stress.Corpus()[2]
	sys := semantics.NewSystem(nil)
	opt := lts.Options{MaxStates: 40, AutonomousOnly: true}
	gi, ierr := lts.Explore(sys, []syntax.Proc{cfg.P}, opt)
	opt.Compiled = true
	gc, cerr := lts.Explore(sys, []syntax.Proc{cfg.P}, opt)
	if ierr != nil || cerr != nil {
		t.Fatalf("explore errors: %v, %v", ierr, cerr)
	}
	if !gi.Truncated {
		t.Skip("budget did not truncate; corpus changed")
	}
	graphsEqual(t, cfg.Name, gi, gc)
}

// TestCompiledErrorParity pins the error surface: a term the interpreter
// rejects is rejected identically by the compiled build.
func TestCompiledErrorParity(t *testing.T) {
	p := syntax.Rec{Id: "A", Body: syntax.Call{Id: "A"}}
	sys := semantics.NewSystem(nil)
	_, ierr := lts.Explore(sys, []syntax.Proc{p}, lts.Options{})
	_, cerr := lts.Explore(sys, []syntax.Proc{p}, lts.Options{Compiled: true})
	if ierr == nil || cerr == nil {
		t.Fatalf("unguarded recursion explored: interpreted %v, compiled %v", ierr, cerr)
	}
	if ierr.Error() != cerr.Error() {
		t.Fatalf("error surface differs:\n interpreted %v\n compiled    %v", ierr, cerr)
	}
}
