package lts

import "testing"

func TestGraphString(t *testing.T) {
	g := &Graph{Edges: make([][]Edge, 0)}
	if got, want := g.String(), "lts.Graph{states: 0, edges: 0, truncated: false}"; got != want {
		t.Fatalf("String() = %q, want %q", got, want)
	}
}
