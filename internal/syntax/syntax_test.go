package syntax

import (
	"testing"

	"bpi/internal/names"
)

// Handy names for tests.
const (
	a Name = "a"
	b Name = "b"
	c Name = "c"
	d Name = "d"
	x Name = "x"
	y Name = "y"
	z Name = "z"
)

func TestConstructorsFold(t *testing.T) {
	if !Equal(Choice(), PNil) || !Equal(Group(), PNil) {
		t.Fatal("empty folds must be nil")
	}
	p := SendN(a)
	if !Equal(Choice(p), p) || !Equal(Group(p), p) {
		t.Fatal("singleton folds must be identity")
	}
	s := Choice(p, p, p)
	if len(SumList(s)) != 3 {
		t.Fatalf("SumList = %v", SumList(s))
	}
	g := Group(p, p, p)
	if len(ParList(g)) != 3 {
		t.Fatalf("ParList = %v", ParList(g))
	}
	r := Restrict(p, x, y)
	rr, ok := r.(Res)
	if !ok || rr.X != x {
		t.Fatalf("Restrict order wrong: %v", String(r))
	}
}

func TestFreeNamesBasics(t *testing.T) {
	// a?(x).x!(b) : free {a,b}, bound {x}
	p := Recv(a, []Name{x}, SendN(x, b))
	if fn := FreeNames(p); !fn.Equal(names.NewSet(a, b)) {
		t.Errorf("fn = %v", fn)
	}
	if bn := BoundNames(p); !bn.Equal(names.NewSet(x)) {
		t.Errorf("bn = %v", bn)
	}
	// νx x!(a): free {a}
	q := Restrict(SendN(x, a), x)
	if fn := FreeNames(q); !fn.Equal(names.NewSet(a)) {
		t.Errorf("fn(nu) = %v", fn)
	}
	// match names are free
	m := If(x, y, PNil, PNil)
	if fn := FreeNames(m); !fn.Equal(names.NewSet(x, y)) {
		t.Errorf("fn(match) = %v", fn)
	}
}

func TestFreeNamesRec(t *testing.T) {
	// (rec A(x). x!().A(x))(a): free {a}
	body := Send(x, nil, Call{"A", []Name{x}})
	r := Rec{"A", []Name{x}, body, []Name{a}}
	if fn := FreeNames(r); !fn.Equal(names.NewSet(a)) {
		t.Errorf("fn(rec) = %v", fn)
	}
	if ids := FreeIdents(r); len(ids) != 0 {
		t.Errorf("rec must bind its identifier: %v", ids)
	}
	if ids := FreeIdents(Call{"B", nil}); !ids["B"] {
		t.Errorf("free call not reported")
	}
}

func TestSubstBasic(t *testing.T) {
	p := SendN(a, b)
	q := Apply(p, names.Single(a, c))
	if !Equal(q, SendN(c, b)) {
		t.Errorf("subst: %v", String(q))
	}
	// Substituting under a binder for a different name.
	p2 := Recv(a, []Name{x}, SendN(x, b))
	q2 := Apply(p2, names.Single(b, c))
	if !Equal(q2, Recv(a, []Name{x}, SendN(x, c))) {
		t.Errorf("subst under binder: %v", String(q2))
	}
	// Binder shadows the substitution domain.
	q3 := Apply(p2, names.Single(x, c))
	if !Equal(q3, p2) {
		t.Errorf("shadowed subst changed term: %v", String(q3))
	}
}

func TestSubstCaptureAvoidance(t *testing.T) {
	// (νx āx̄?) careful case: p = nu x. a!(x,b); apply [x/b] — the binder x
	// would capture; result must rename the binder.
	p := Restrict(SendN(a, x, b), x)
	q := Apply(p, names.Single(b, x))
	r, ok := q.(Res)
	if !ok {
		t.Fatalf("result shape: %v", String(q))
	}
	if r.X == x {
		t.Fatalf("binder not renamed: %v", String(q))
	}
	out := r.Body.(Prefix).Pre.(Out)
	if out.Args[0] != r.X || out.Args[1] != x {
		t.Fatalf("capture occurred: %v", String(q))
	}
	// Input binder capture.
	p2 := Recv(a, []Name{x}, SendN(x, b))
	q2 := Apply(p2, names.Single(b, x))
	in2 := q2.(Prefix).Pre.(In)
	if in2.Params[0] == x {
		t.Fatalf("input binder not renamed: %v", String(q2))
	}
}

func TestSubstSimultaneous(t *testing.T) {
	// Swap [y/x, x/y] must be simultaneous, not sequential.
	p := SendN(a, x, y)
	q := Apply(p, names.FromSlices([]Name{x, y}, []Name{y, x}))
	out := q.(Prefix).Pre.(Out)
	if out.Args[0] != y || out.Args[1] != x {
		t.Fatalf("swap broken: %v", String(q))
	}
}

func TestUnfold(t *testing.T) {
	// (rec A(x). x!().A(x))(a) unfolds to a!().(rec A(x). x!().A(x))(a)
	body := Send(x, nil, Call{"A", []Name{x}})
	r := Rec{"A", []Name{x}, body, []Name{a}}
	u := Unfold(r)
	want := Send(a, nil, Rec{"A", []Name{x}, body, []Name{a}})
	if !AlphaEqual(u, want) {
		t.Fatalf("unfold = %v, want %v", String(u), String(want))
	}
	// A second unfolding keeps working (regression for identifier capture).
	u2 := Unfold(u.(Prefix).Cont.(Rec))
	if !AlphaEqual(u2, want) {
		t.Fatalf("second unfold = %v", String(u2))
	}
}

func TestUnfoldNestedRecShadowing(t *testing.T) {
	// (rec A(x). tau.(rec A(y). A(y))(x) + A(x))(a): the inner rec shadows
	// A, so only the outer call is tied back.
	inner := Rec{"A", []Name{y}, Call{"A", []Name{y}}, []Name{x}}
	body := Sum{TauP(inner), TauP(Call{"A", []Name{x}})}
	r := Rec{"A", []Name{x}, body, []Name{a}}
	u := Unfold(r)
	s := u.(Sum)
	innerGot := s.L.(Prefix).Cont.(Rec)
	if got := innerGot.Body.(Call); got.Id != "A" {
		t.Fatalf("inner call rewritten: %v", String(u))
	}
	if _, isRec := innerGot.Body.(Rec); isRec {
		t.Fatalf("shadowed identifier was substituted: %v", String(u))
	}
	if _, isRec := s.R.(Prefix).Cont.(Rec); !isRec {
		t.Fatalf("outer call not tied back: %v", String(u))
	}
}

func TestAlphaEqual(t *testing.T) {
	p := Recv(a, []Name{x}, SendN(x))
	q := Recv(a, []Name{y}, SendN(y))
	if !AlphaEqual(p, q) {
		t.Error("alpha-equivalent inputs not detected")
	}
	r := Recv(a, []Name{x}, SendN(a))
	if AlphaEqual(p, r) {
		t.Error("distinct terms conflated")
	}
	// νx p ≡α νy p[y/x]
	p2 := Restrict(SendN(x, a), x)
	q2 := Restrict(SendN(y, a), y)
	if !AlphaEqual(p2, q2) {
		t.Error("alpha on restriction failed")
	}
	if Key(p2) != Key(q2) {
		t.Error("Key must agree on alpha-equivalent terms")
	}
	if Key(p) == Key(r) {
		t.Error("Key collision on distinct terms")
	}
}

func TestKeyDistinguishesStructure(t *testing.T) {
	pairs := [][2]Proc{
		{Sum{SendN(a), SendN(b)}, Par{SendN(a), SendN(b)}},
		{SendN(a, b), RecvN(a, b)},
		{If(a, b, SendN(c), PNil), If(a, b, PNil, SendN(c))},
		{Restrict(SendN(a), b), SendN(a)},
		{Send(a, nil, SendN(b)), Sum{SendN(a), SendN(b)}},
	}
	for i, pr := range pairs {
		if Key(pr[0]) == Key(pr[1]) {
			t.Errorf("case %d: Key collision between %v and %v", i, String(pr[0]), String(pr[1]))
		}
	}
}

func TestStringRendering(t *testing.T) {
	cases := []struct {
		p    Proc
		want string
	}{
		{PNil, "0"},
		{SendN(a, b, c), "a!(b,c)"},
		{SendN(a), "a!"},
		{RecvN(a, x), "a?(x)"},
		{TauP(SendN(a)), "tau.a!"},
		{Sum{SendN(a), SendN(b)}, "a! + b!"},
		{Par{SendN(a), SendN(b)}, "a! | b!"},
		{Par{Sum{SendN(a), SendN(b)}, SendN(c)}, "(a! + b!) | c!"},
		{Restrict(SendN(a, x), x), "nu x.a!(x)"},
		{If(x, y, SendN(a), PNil), "[x=y]a!"},
		{If(x, y, SendN(a), SendN(b)), "[x=y](a!, b!)"},
		{Call{"A", []Name{a, b}}, "A(a,b)"},
		{Send(a, []Name{b}, RecvN(c, z)), "a!(b).c?(z)"},
		{Prefix{In{a, []Name{x}}, Sum{SendN(b), SendN(c)}}, "a?(x).(b! + c!)"},
	}
	for _, cse := range cases {
		if got := String(cse.p); got != cse.want {
			t.Errorf("String() = %q, want %q", got, cse.want)
		}
	}
}

func TestEnvExpandAndValidate(t *testing.T) {
	// A(x) = x!().A(x)  — valid, guarded.
	env := Env{}.Define("A", []Name{x}, Send(x, nil, Call{"A", []Name{x}}))
	if err := env.Validate(); err != nil {
		t.Fatalf("valid env rejected: %v", err)
	}
	p, err := env.Expand(Call{"A", []Name{a}})
	if err != nil {
		t.Fatal(err)
	}
	if !AlphaEqual(p, Send(a, nil, Call{"A", []Name{a}})) {
		t.Errorf("expand = %v", String(p))
	}
	// Arity error.
	if _, err := env.Expand(Call{"A", []Name{a, b}}); err == nil {
		t.Error("arity mismatch accepted")
	}
	// Unknown identifier.
	if _, err := env.Expand(Call{"B", nil}); err == nil {
		t.Error("unknown identifier accepted")
	}
	// Unguarded: B(x) = B(x) + x!()
	bad := Env{}.Define("B", []Name{x}, Sum{Call{"B", []Name{x}}, SendN(x)})
	if err := bad.Validate(); err == nil {
		t.Error("unguarded definition accepted")
	}
	// Free names outside parameters.
	leaky := Env{}.Define("C", []Name{x}, SendN(a))
	if err := leaky.Validate(); err == nil {
		t.Error("leaky definition accepted")
	}
	// Call to undefined identifier inside a body.
	dangling := Env{}.Define("D", []Name{x}, TauP(Call{"E", []Name{x}}))
	if err := dangling.Validate(); err == nil {
		t.Error("dangling call accepted")
	}
}

func TestCheckGuarded(t *testing.T) {
	r := Rec{"A", []Name{x}, Call{"A", []Name{x}}, []Name{a}}
	if CheckGuarded(r, nil) {
		t.Error("unguarded rec accepted")
	}
	g := Rec{"A", []Name{x}, TauP(Call{"A", []Name{x}}), []Name{a}}
	if !CheckGuarded(g, nil) {
		t.Error("guarded rec rejected")
	}
}

func TestMetrics(t *testing.T) {
	p := Sum{Send(a, nil, SendN(b)), TauP(PNil)}
	if Size(p) != 6 {
		t.Errorf("Size = %d", Size(p))
	}
	if Depth(p) != 2 {
		t.Errorf("Depth = %d", Depth(p))
	}
	if Depth(Par{TauP(PNil), TauP(PNil)}) != 2 {
		t.Error("parallel depth should add")
	}
	if !IsFinite(p) {
		t.Error("finite term misclassified")
	}
	if IsFinite(Call{"A", nil}) {
		t.Error("call misclassified as finite")
	}
}

func TestSimplifyLaws(t *testing.T) {
	p := SendN(a)
	cases := []struct{ in, want Proc }{
		{Sum{p, PNil}, p},          // S1
		{Sum{p, p}, p},             // S2
		{Par{p, PNil}, p},          // P1
		{Restrict(p, x), p},        // R1 (x not free)
		{If(a, a, p, SendN(b)), p}, // match true
		{If(a, b, SendN(b), p), p}, // match false on stable names
		{Sum{SendN(b), SendN(a)}, Sum{SendN(a), SendN(b)}}, // sorted
	}
	for i, cse := range cases {
		if got := Simplify(cse.in); !Equal(got, cse.want) {
			t.Errorf("case %d: Simplify(%v) = %v, want %v", i, String(cse.in), String(got), String(cse.want))
		}
	}
}

func TestSimplifyKeepsInstantiableMatches(t *testing.T) {
	// a?(x).[x=b]c!,d! must keep the conditional: x may be instantiated to b.
	p := Recv(a, []Name{x}, If(x, b, SendN(c), SendN(d)))
	got := Simplify(p)
	if _, ok := got.(Prefix).Cont.(Match); !ok {
		t.Fatalf("match under input binder eliminated: %v", String(got))
	}
	// But a match on two outer free names under the same binder is stable.
	q := Recv(a, []Name{x}, If(b, c, SendN(b), SendN(d)))
	want := Recv(a, []Name{x}, SendN(d))
	if got := Simplify(q); !Equal(got, want) {
		t.Fatalf("stable match kept: %v", String(got))
	}
}

func TestSimplifyParallelCanonical(t *testing.T) {
	p := Group(SendN(b), PNil, SendN(a))
	q := Group(SendN(a), SendN(b))
	if !Equal(Simplify(p), Simplify(q)) {
		t.Errorf("parallel canonicalisation differs: %v vs %v", String(Simplify(p)), String(Simplify(q)))
	}
	// Restriction reordering.
	r1 := Restrict(SendN(a, x, y), y, x)
	r2 := Restrict(SendN(a, x, y), x, y)
	if Key(Simplify(r1)) != Key(Simplify(r2)) {
		t.Error("nu reordering not canonical")
	}
}

func TestSimplifySoundOnShadowedRestriction(t *testing.T) {
	// nu x. nu x. x!(a) — shadowed binders must not be reordered away.
	p := Res{x, Res{x, SendN(x, a)}}
	got := Simplify(p)
	// Inner x is the one used; outer is unused so R1 may drop it, which is
	// sound; what matters is the term still emits on a bound channel.
	fn := FreeNames(got)
	if !fn.Equal(names.NewSet(a)) {
		t.Fatalf("free names changed: %v (%v)", fn, String(got))
	}
}

func TestCheckSorts(t *testing.T) {
	// a used at arities 0 and 1: conflict.
	p := Group(SendN(a, b), RecvN(a))
	issues := CheckSorts(p, nil)
	if len(issues) != 1 || issues[0].Channel != a {
		t.Fatalf("issues: %v", issues)
	}
	if got := issues[0].String(); got == "" {
		t.Error("empty issue rendering")
	}
	// Consistent usage: no issues.
	q := Group(SendN(a, b), Recv(a, []Name{x}, SendN(x)))
	if issues := CheckSorts(q, nil); len(issues) != 0 {
		t.Fatalf("false positives: %v", issues)
	}
	// Bound input parameters are not tracked (received names are dynamic).
	r := Recv(a, []Name{x}, Group(SendN(x), SendN(x, b)))
	if issues := CheckSorts(r, nil); len(issues) != 0 {
		t.Fatalf("bound-name false positive: %v", issues)
	}
	// Environment bodies are included.
	env := Env{}.Define("A", []Name{x}, Group(SendN(b), SendN(b, x)))
	if issues := CheckSorts(PNil, env); len(issues) != 1 || issues[0].Channel != b {
		t.Fatalf("env issues: %v", issues)
	}
	// Restricted channels are checked too.
	s := Restrict(Group(SendN(z), RecvN(z, x)), z)
	if issues := CheckSorts(s, nil); len(issues) != 1 {
		t.Fatalf("restricted conflict missed: %v", issues)
	}
}
