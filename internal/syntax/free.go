package syntax

import "bpi/internal/names"

// FreeNames returns fn(p): the names of p not in the scope of any binder.
// Binders are νx (binding x), inputs x(ỹ) (binding ỹ in the continuation),
// and rec parameters (binding x̃ in the recursion body).
func FreeNames(p Proc) names.Set {
	out := make(names.Set)
	addFree(p, out, nil)
	return out
}

// addFree accumulates the free names of p into out, where bound holds the
// binders currently in scope.
func addFree(p Proc, out, bound names.Set) {
	switch t := p.(type) {
	case Nil:
	case Prefix:
		switch pre := t.Pre.(type) {
		case Tau:
			addFree(t.Cont, out, bound)
		case Out:
			addName(pre.Ch, out, bound)
			for _, a := range pre.Args {
				addName(a, out, bound)
			}
			addFree(t.Cont, out, bound)
		case In:
			addName(pre.Ch, out, bound)
			inner := extend(bound, pre.Params)
			addFree(t.Cont, out, inner)
		}
	case Sum:
		addFree(t.L, out, bound)
		addFree(t.R, out, bound)
	case Par:
		addFree(t.L, out, bound)
		addFree(t.R, out, bound)
	case Res:
		inner := extend(bound, []Name{t.X})
		addFree(t.Body, out, inner)
	case Match:
		addName(t.X, out, bound)
		addName(t.Y, out, bound)
		addFree(t.Then, out, bound)
		addFree(t.Else, out, bound)
	case Call:
		for _, a := range t.Args {
			addName(a, out, bound)
		}
	case Rec:
		for _, a := range t.Args {
			addName(a, out, bound)
		}
		inner := extend(bound, t.Params)
		addFree(t.Body, out, inner)
	default:
		panic("syntax: unknown process node")
	}
}

func addName(n Name, out, bound names.Set) {
	if !bound.Contains(n) {
		out.Add(n)
	}
}

// extend returns bound ∪ ns without mutating bound.
func extend(bound names.Set, ns []Name) names.Set {
	if len(ns) == 0 {
		return bound
	}
	inner := bound.Clone()
	if inner == nil {
		inner = make(names.Set)
	}
	return inner.AddSlice(ns)
}

// BoundNames returns bn(p): every name that occurs as a binder somewhere in p.
func BoundNames(p Proc) names.Set {
	out := make(names.Set)
	addBound(p, out)
	return out
}

func addBound(p Proc, out names.Set) {
	switch t := p.(type) {
	case Nil, Call:
	case Prefix:
		if in, ok := t.Pre.(In); ok {
			out.AddSlice(in.Params)
		}
		addBound(t.Cont, out)
	case Sum:
		addBound(t.L, out)
		addBound(t.R, out)
	case Par:
		addBound(t.L, out)
		addBound(t.R, out)
	case Res:
		out.Add(t.X)
		addBound(t.Body, out)
	case Match:
		addBound(t.Then, out)
		addBound(t.Else, out)
	case Rec:
		out.AddSlice(t.Params)
		addBound(t.Body, out)
	default:
		panic("syntax: unknown process node")
	}
}

// AllNames returns n(p) = fn(p) ∪ bn(p).
func AllNames(p Proc) names.Set {
	return FreeNames(p).Union(BoundNames(p))
}

// FreeIdents returns the process identifiers that occur free in p (Call
// nodes not captured by an enclosing Rec with the same Id). A process is
// closed, in the paper's sense, when it has no free identifiers relative to
// the definitions environment in use.
func FreeIdents(p Proc) map[string]bool {
	out := map[string]bool{}
	addFreeIdents(p, out, map[string]bool{})
	return out
}

func addFreeIdents(p Proc, out map[string]bool, bound map[string]bool) {
	switch t := p.(type) {
	case Nil:
	case Prefix:
		addFreeIdents(t.Cont, out, bound)
	case Sum:
		addFreeIdents(t.L, out, bound)
		addFreeIdents(t.R, out, bound)
	case Par:
		addFreeIdents(t.L, out, bound)
		addFreeIdents(t.R, out, bound)
	case Res:
		addFreeIdents(t.Body, out, bound)
	case Match:
		addFreeIdents(t.Then, out, bound)
		addFreeIdents(t.Else, out, bound)
	case Call:
		if !bound[t.Id] {
			out[t.Id] = true
		}
	case Rec:
		if bound[t.Id] {
			addFreeIdents(t.Body, out, bound)
			return
		}
		bound[t.Id] = true
		addFreeIdents(t.Body, out, bound)
		delete(bound, t.Id)
	default:
		panic("syntax: unknown process node")
	}
}
