package syntax

import (
	"math/rand"
	"testing"
	"testing/quick"

	"bpi/internal/names"
)

// genTerm builds a random finite term directly (the syntax package cannot
// import internal/rand, which depends on it).
func genTerm(rng *rand.Rand, depth int, pool []Name) Proc {
	if depth == 0 || rng.Intn(5) == 0 {
		return PNil
	}
	pick := func() Name { return pool[rng.Intn(len(pool))] }
	switch rng.Intn(7) {
	case 0:
		return Send(pick(), []Name{pick()}, genTerm(rng, depth-1, pool))
	case 1:
		bndr := Name(string(pick()) + "_b")
		inner := append(pool[:len(pool):len(pool)], bndr)
		return Recv(pick(), []Name{bndr}, genTerm(rng, depth-1, inner))
	case 2:
		return TauP(genTerm(rng, depth-1, pool))
	case 3:
		return Choice(genTerm(rng, depth-1, pool), genTerm(rng, depth-1, pool))
	case 4:
		return Group(genTerm(rng, depth-1, pool), genTerm(rng, depth-1, pool))
	case 5:
		bndr := Name(string(pick()) + "_n")
		inner := append(pool[:len(pool):len(pool)], bndr)
		return Restrict(genTerm(rng, depth-1, inner), bndr)
	default:
		return If(pick(), pick(), genTerm(rng, depth-1, pool), genTerm(rng, depth-1, pool))
	}
}

var quickPool = []Name{"a", "b", "c"}

// termFromSeed derives a deterministic random term from a quick-generated seed.
func termFromSeed(seed int64) Proc {
	return genTerm(rand.New(rand.NewSource(seed)), 4, quickPool)
}

func substFromSeed(seed int64) names.Subst {
	rng := rand.New(rand.NewSource(seed))
	s := names.Subst{}
	for _, n := range quickPool {
		if rng.Intn(2) == 0 {
			s[n] = quickPool[rng.Intn(len(quickPool))]
		}
	}
	return s
}

// Property: substitution composition — (pσ)ρ =α p(σ;ρ) when both are built
// from the same free pool (no binder interference by construction of the
// pools).
func TestQuickSubstComposition(t *testing.T) {
	f := func(ts, s1, s2 int64) bool {
		p := termFromSeed(ts)
		sig := substFromSeed(s1)
		rho := substFromSeed(s2)
		lhs := Apply(Apply(p, sig), rho)
		rhs := Apply(p, sig.Compose(rho))
		return AlphaEqual(lhs, rhs)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Canon is idempotent and Key is stable under alpha-renaming of a
// fresh binder introduced around the term.
func TestQuickCanonIdempotent(t *testing.T) {
	f := func(ts int64) bool {
		p := termFromSeed(ts)
		c1 := Canon(p)
		c2 := Canon(c1)
		return Equal(c1, c2) && Key(p) == Key(c1)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: identity substitution is the identity.
func TestQuickIdentitySubst(t *testing.T) {
	f := func(ts int64) bool {
		p := termFromSeed(ts)
		return Equal(Apply(p, names.Subst{}), p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: fn(pσ) = σ(fn(p)) for substitutions over free names.
func TestQuickFreeNamesUnderSubst(t *testing.T) {
	f := func(ts, ss int64) bool {
		p := termFromSeed(ts)
		sig := substFromSeed(ss)
		want := names.NewSet()
		for n := range FreeNames(p) {
			want = want.Add(sig.Apply(n))
		}
		return FreeNames(Apply(p, sig)).Equal(want)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Simplify is idempotent and never grows the term.
func TestQuickSimplifyIdempotentAndShrinking(t *testing.T) {
	f := func(ts int64) bool {
		p := termFromSeed(ts)
		s1 := Simplify(p)
		s2 := Simplify(s1)
		return Equal(s1, s2) && Size(s1) <= Size(p)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: Simplify preserves free names up to deletion (no new frees).
func TestQuickSimplifyFreeNames(t *testing.T) {
	f := func(ts int64) bool {
		p := termFromSeed(ts)
		return FreeNames(Simplify(p)).Minus(FreeNames(p)).Len() == 0
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

// Property: alpha-renaming a top restriction binder is invisible to Key.
func TestQuickAlphaInvariance(t *testing.T) {
	f := func(ts int64) bool {
		p := termFromSeed(ts)
		withX := Restrict(Apply(p, names.Single("a", "fresh_x")), "fresh_x")
		withY := Restrict(Apply(p, names.Single("a", "fresh_y")), "fresh_y")
		return Key(withX) == Key(withY)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}
