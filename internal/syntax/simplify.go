package syntax

import (
	"sort"

	"bpi/internal/names"
)

// Simplify rewrites p with laws that preserve its strong labelled
// bisimilarity class, its one-step transition structure (up to duplicate
// transitions) and its discard relation:
//
//	p + nil = p, p + p = p, commutativity/associativity of +   (S1–S4)
//	p ‖ nil = p, commutativity/associativity of ‖              (P1 + expansion)
//	(x=x)p,q = p                                                (C5 family)
//	(x=y)p,q = q for distinct x,y that can never be identified  (see below)
//	νx p = p when x ∉ fn(p)                                     (R1)
//	νx νy p = νy νx p (ordered canonically)                     (R2)
//
// It is used to intern states during LTS exploration and equivalence
// checking, shrinking the state space without affecting any verdict.
//
// Match elimination soundness: (x=y)p,q with x ≠ y may only be rewritten to
// q when the inequality is stable under the *semantics*, i.e. neither name
// can later be instantiated: input parameters and rec parameters in scope
// can be filled with arbitrary received names, so matches mentioning them
// are kept. Names that are free in the whole term, or ν-bound, are never
// identified by the transition rules (extrusion keeps bound names fresh via
// alpha-conversion), so those matches are decided now — the rewrite mirrors
// SOS rules (9)/(10) and Table 2 rules (7)/(8) exactly, which is why both
// the transitions and the discards of the term are unchanged.
//
// CAUTION: stable-match elimination is NOT sound under substitution
// contexts — a later fusion σ with σ(x)=σ(y) would have taken the then
// branch. Every checker that closes over substitutions (~c / ≈c) therefore
// applies σ to the original term *before* any simplification; Simplify
// must never be applied to a term that will still be substituted into.
func Simplify(p Proc) Proc {
	return simplify(p, nil)
}

// simplify carries the set of instantiable binders currently in scope
// (input parameters and rec parameters).
func simplify(p Proc, inst names.Set) Proc {
	switch t := p.(type) {
	case Nil, Call:
		return p
	case Prefix:
		if in, ok := t.Pre.(In); ok {
			inner := extend(inst, in.Params)
			return Prefix{t.Pre, simplify(t.Cont, inner)}
		}
		return Prefix{t.Pre, simplify(t.Cont, inst)}
	case Sum:
		// Re-collect after simplifying: a summand may itself collapse to a
		// sum (e.g. a decided match), whose parts must join this level's
		// dedupe and ordering or a second pass would normalise further.
		var parts []Proc
		for _, q := range collectSum(p) {
			parts = append(parts, collectSum(simplify(q, inst))...)
		}
		parts = dedupeDropNil(parts)
		sortByKey(parts)
		return Choice(parts...)
	case Par:
		// Same re-flattening as Sum: a component collapsing to a composition
		// must not leave a nested Par that re-associates on the next pass.
		var out []Proc
		for _, q := range collectPar(p) {
			for _, r := range collectPar(simplify(q, inst)) {
				if _, isNil := r.(Nil); isNil {
					continue
				}
				out = append(out, r)
			}
		}
		sortByKey(out)
		return Group(out...)
	case Res:
		body := simplify(t.Body, inst)
		if !FreeNames(body).Contains(t.X) {
			return body
		}
		return sortRes(Res{t.X, body})
	case Match:
		if t.X == t.Y {
			return simplify(t.Then, inst)
		}
		if !inst.Contains(t.X) && !inst.Contains(t.Y) {
			return simplify(t.Else, inst)
		}
		return Match{t.X, t.Y, simplify(t.Then, inst), simplify(t.Else, inst)}
	case Rec:
		return p // unfolding (and thus simplification of unfoldings) is the semantics' job
	default:
		panic("syntax: unknown process node")
	}
}

func collectSum(p Proc) []Proc {
	if s, ok := p.(Sum); ok {
		return append(collectSum(s.L), collectSum(s.R)...)
	}
	return []Proc{p}
}

func collectPar(p Proc) []Proc {
	if s, ok := p.(Par); ok {
		return append(collectPar(s.L), collectPar(s.R)...)
	}
	return []Proc{p}
}

// dedupeDropNil removes nil summands and duplicate (alpha-equal) summands.
func dedupeDropNil(ps []Proc) []Proc {
	seen := map[string]bool{}
	out := ps[:0]
	for _, q := range ps {
		if _, isNil := q.(Nil); isNil {
			continue
		}
		k := Key(q)
		if seen[k] {
			continue
		}
		seen[k] = true
		out = append(out, q)
	}
	return out
}

func sortByKey(ps []Proc) {
	sort.SliceStable(ps, func(i, j int) bool { return Key(ps[i]) < Key(ps[j]) })
}

// sortRes canonically orders a maximal block νx1 … νxn so that commuting
// restrictions (law R2 / Lemma 6(i)) yields one representative. Reordering
// is skipped when binder names repeat (shadowing would change capture).
func sortRes(r Res) Proc {
	var xs []Name
	var body Proc = r
	for {
		rr, ok := body.(Res)
		if !ok {
			break
		}
		xs = append(xs, rr.X)
		body = rr.Body
	}
	if len(xs) < 2 {
		return r
	}
	seen := map[Name]bool{}
	for _, x := range xs {
		if seen[x] {
			return r
		}
		seen[x] = true
	}
	orig := append([]Name(nil), xs...)
	sort.SliceStable(xs, func(i, j int) bool { return xs[i] < xs[j] })
	for i := range xs {
		if xs[i] != orig[i] {
			return Restrict(body, xs...)
		}
	}
	return r
}
