package syntax

import (
	"strings"
	"testing"
)

// TestValidateUnguardedCycles drives unguardedCycle/unguardedCalls through
// every constructor an unguarded reference can hide under: a cycle is only a
// cycle when no prefix guards any edge, regardless of the operators between
// the definition head and the call.
func TestValidateUnguardedCycles(t *testing.T) {
	cases := []struct {
		name string
		env  Env
		ok   bool
	}{
		{
			// A = B | tau.0 ; B = A + tau.0 — unguarded cycle through Par/Sum.
			"par-sum cycle",
			Env{}.
				Define("A", nil, Par{Call{"B", nil}, TauP(PNil)}).
				Define("B", nil, Sum{Call{"A", nil}, TauP(PNil)}),
			false,
		},
		{
			// A = νz ([z=z] B else 0) ; B = tau.A — the Res/Match hop is
			// unguarded but B reaches A only under a prefix: no cycle.
			"guarded back-edge",
			Env{}.
				Define("A", nil, Restrict(If(z, z, Call{"B", nil}, PNil), z)).
				Define("B", nil, TauP(Call{"A", nil})),
			true,
		},
		{
			// A = νz [z=z] A else 0 — self-loop through Res and Match.
			"res-match self-loop",
			Env{}.Define("A", nil, Restrict(If(z, z, Call{"A", nil}, PNil), z)),
			false,
		},
		{
			// A = rec X. (A | tau.X) — the rec binder shadows X but the free
			// occurrence of A inside the rec body is still unguarded.
			"unguarded through rec body",
			Env{}.Define("A", nil, Rec{"X", nil, Par{Call{"A", nil}, TauP(Call{"X", nil})}, nil}),
			false,
		},
		{
			// A = rec X. tau.(X | A) — everything is under the tau prefix.
			"rec body guarded",
			Env{}.Define("A", nil, Rec{"X", nil, TauP(Par{Call{"X", nil}, Call{"A", nil}}), nil}),
			true,
		},
	}
	for _, cse := range cases {
		err := cse.env.Validate()
		if cse.ok && err != nil {
			t.Errorf("%s: valid env rejected: %v", cse.name, err)
		}
		if !cse.ok {
			if err == nil {
				t.Errorf("%s: unguarded cycle accepted", cse.name)
			} else if !strings.Contains(err.Error(), "unguarded") {
				t.Errorf("%s: wrong error: %v", cse.name, err)
			}
		}
	}
}

// TestCheckCallsErrors exercises the arity and resolution checks of
// Env.checkCalls through each syntactic position a Call can occupy.
func TestCheckCallsErrors(t *testing.T) {
	base := Env{}.Define("A", []Name{x}, TauP(SendN(x)))
	cases := []struct {
		name string
		body Proc
		want string // substring of the expected error ("" = valid)
	}{
		{"call under prefix", TauP(Call{"A", []Name{z}}), ""},
		{"arity under sum", Sum{TauP(PNil), TauP(Call{"A", nil})}, "expects 1 args"},
		{"undefined under par", Par{TauP(PNil), TauP(Call{"Z", nil})}, "undefined identifier"},
		{"arity under res", Restrict(TauP(Call{"A", []Name{z, z}}), z), "expects 1 args"},
		{"undefined under match", If(z, z, PNil, TauP(Call{"Z", nil})), "undefined identifier"},
		{"rec call arity", Rec{"X", []Name{y}, TauP(Call{"X", nil}), []Name{z}}, "expects 1 args"},
		{"rec params/args mismatch", Rec{"X", []Name{y}, TauP(PNil), nil}, "1 params but 0 args"},
		{"rec shadows env id", Rec{"A", nil, TauP(Call{"A", nil}), nil}, ""},
	}
	for _, cse := range cases {
		env := base.Define("D", []Name{z}, cse.body)
		err := env.Validate()
		if cse.want == "" {
			if err != nil {
				t.Errorf("%s: valid body rejected: %v", cse.name, err)
			}
			continue
		}
		if err == nil {
			t.Errorf("%s: bad body accepted", cse.name)
		} else if !strings.Contains(err.Error(), cse.want) {
			t.Errorf("%s: error %q does not mention %q", cse.name, err, cse.want)
		}
	}
}

// TestCheckGuardedOperators pins guardedIn across the remaining operators:
// guardedness distributes through sums, compositions, restrictions and
// matches, and a nested rec restarts unguarded.
func TestCheckGuardedOperators(t *testing.T) {
	env := Env{}.Define("A", nil, TauP(PNil))
	good := []Proc{
		PNil,
		Sum{TauP(Call{"A", nil}), TauP(PNil)},
		Par{TauP(Call{"A", nil}), Restrict(TauP(Call{"A", nil}), z)},
		If(z, z, TauP(Call{"A", nil}), PNil),
		Call{"Unwatched", nil}, // not in the environment: nothing to guard
		Rec{"X", nil, TauP(Par{Call{"X", nil}, Call{"A", nil}}), nil},
	}
	for _, p := range good {
		if !CheckGuarded(p, env) {
			t.Errorf("guarded term rejected: %s", String(p))
		}
	}
	bad := []Proc{
		Sum{Call{"A", nil}, TauP(PNil)},
		Par{TauP(PNil), Call{"A", nil}},
		Restrict(Call{"A", nil}, z),
		If(z, z, PNil, Call{"A", nil}),
		// The nested rec's own body is unguarded even under an outer prefix.
		TauP(Rec{"X", nil, Call{"X", nil}, nil}),
	}
	for _, p := range bad {
		if CheckGuarded(p, env) {
			t.Errorf("unguarded term accepted: %s", String(p))
		}
	}
}

// TestMetricsOperators pins Size/Depth/IsFinite on the constructors the
// basic metrics test leaves out (restriction, match, rec, call).
func TestMetricsOperators(t *testing.T) {
	rec := Rec{"X", nil, TauP(Call{"X", nil}), nil}
	m := If(a, b, TauP(TauP(PNil)), SendN(c))
	r := Restrict(m, z)
	if got := Size(r); got != 7 {
		t.Errorf("Size(res-match) = %d, want 7", got)
	}
	if got := Size(rec); got != 3 {
		t.Errorf("Size(rec) = %d, want 3", got)
	}
	if got := Depth(r); got != 2 {
		t.Errorf("Depth(res-match) = %d, want 2 (max of branches)", got)
	}
	if got := Depth(rec); got != 1 {
		t.Errorf("Depth(rec) = %d, want static depth 1", got)
	}
	if got := Depth(Call{"A", nil}); got != 0 {
		t.Errorf("Depth(call) = %d, want 0", got)
	}
	if !IsFinite(r) {
		t.Error("finite res-match misclassified")
	}
	if IsFinite(rec) || IsFinite(Par{PNil, rec}) || IsFinite(Restrict(rec, z)) ||
		IsFinite(If(a, b, rec, PNil)) || IsFinite(Sum{TauP(PNil), TauP(rec)}) {
		t.Error("recursive term classified as finite")
	}
}
