// Package syntax defines the abstract syntax of the bπ-calculus (Table 1 of
// Ene & Muntean, "A Broadcast-based Calculus for Communicating Systems"),
// together with binding structure (free/bound names), alpha-conversion,
// capture-avoiding substitution, canonical forms, printing and metrics.
//
// The process grammar is
//
//	p ::= nil | π.p | νx p | (x=y)p,q | p+q | p‖q | A⟨x̃⟩ | (rec A(x̃).p)⟨ỹ⟩
//
// with prefixes π ::= x(ỹ) | x̄ỹ | τ.
package syntax

import "bpi/internal/names"

// Name aliases the calculus name type for brevity within this package tree.
type Name = names.Name

// Proc is a bπ-calculus process term. Terms are immutable: all operations
// return new terms and never mutate shared structure, so Procs are safe to
// share across goroutines.
type Proc interface {
	isProc()
}

// Pre is a prefix π: an input x(ỹ), an output x̄ỹ, or the silent prefix τ.
type Pre interface {
	isPre()
}

// Tau is the silent prefix τ.
type Tau struct{}

// In is the input prefix x(ỹ): receive the names ỹ on channel Ch. The
// parameters are binders for the continuation.
type In struct {
	Ch     Name
	Params []Name
}

// Out is the output prefix x̄ỹ: broadcast the names Args on channel Ch.
type Out struct {
	Ch   Name
	Args []Name
}

func (Tau) isPre() {}
func (In) isPre()  {}
func (Out) isPre() {}

// Nil is the inert process.
type Nil struct{}

// Prefix is π.p.
type Prefix struct {
	Pre  Pre
	Cont Proc
}

// Sum is the binary choice p+q.
type Sum struct {
	L, R Proc
}

// Par is the parallel composition p‖q. Communication between the branches is
// by unbuffered broadcast (rules 12–14 of Table 3).
type Par struct {
	L, R Proc
}

// Res is the restriction νx p: creation of a new local channel x whose
// initial scope is p.
type Res struct {
	X    Name
	Body Proc
}

// Match is the conditional (x=y)p,q: behaves as Then when X and Y are the
// same name, as Else otherwise.
type Match struct {
	X, Y Name
	Then Proc
	Else Proc
}

// Call is a process identifier application A⟨x̃⟩. The identifier is resolved
// either by an enclosing Rec binder with the same Id, or by a definitions
// environment (Env) supplied to the semantics.
type Call struct {
	Id   string
	Args []Name
}

// Rec is the recursive process (rec A(x̃).p)⟨ỹ⟩: within Body, Call nodes
// naming Id refer back to this recursion. Params are binders for Body; Args
// instantiate them. The paper requires every recursive occurrence to be
// guarded (underneath a prefix); see CheckGuarded.
type Rec struct {
	Id     string
	Params []Name
	Body   Proc
	Args   []Name
}

func (Nil) isProc()    {}
func (Prefix) isProc() {}
func (Sum) isProc()    {}
func (Par) isProc()    {}
func (Res) isProc()    {}
func (Match) isProc()  {}
func (Call) isProc()   {}
func (Rec) isProc()    {}

// ---- Convenience constructors ------------------------------------------

// PNil is the shared inert process.
var PNil = Nil{}

// TauP builds τ.p.
func TauP(p Proc) Proc { return Prefix{Tau{}, p} }

// Recv builds x(ỹ).p.
func Recv(ch Name, params []Name, p Proc) Proc { return Prefix{In{ch, params}, p} }

// Send builds x̄ỹ.p.
func Send(ch Name, args []Name, p Proc) Proc { return Prefix{Out{ch, args}, p} }

// SendN builds the output x̄ỹ (with nil continuation, the paper's "omit the
// trail nil" convention).
func SendN(ch Name, args ...Name) Proc { return Prefix{Out{ch, args}, PNil} }

// RecvN builds x(ỹ).nil.
func RecvN(ch Name, params ...Name) Proc { return Prefix{In{ch, params}, PNil} }

// Choice folds a list of processes with +; Choice() is nil.
func Choice(ps ...Proc) Proc {
	switch len(ps) {
	case 0:
		return PNil
	case 1:
		return ps[0]
	}
	out := ps[len(ps)-1]
	for i := len(ps) - 2; i >= 0; i-- {
		out = Sum{ps[i], out}
	}
	return out
}

// Group folds a list of processes with ‖; Group() is nil.
func Group(ps ...Proc) Proc {
	switch len(ps) {
	case 0:
		return PNil
	case 1:
		return ps[0]
	}
	out := ps[len(ps)-1]
	for i := len(ps) - 2; i >= 0; i-- {
		out = Par{ps[i], out}
	}
	return out
}

// Restrict wraps p in νx1 … νxn.
func Restrict(p Proc, xs ...Name) Proc {
	for i := len(xs) - 1; i >= 0; i-- {
		p = Res{xs[i], p}
	}
	return p
}

// If builds (x=y)p,q.
func If(x, y Name, then, els Proc) Proc { return Match{x, y, then, els} }

// SumList flattens nested Sum nodes into a slice (left-to-right order).
func SumList(p Proc) []Proc {
	if s, ok := p.(Sum); ok {
		return append(SumList(s.L), SumList(s.R)...)
	}
	return []Proc{p}
}

// ParList flattens nested Par nodes into a slice (left-to-right order).
func ParList(p Proc) []Proc {
	if s, ok := p.(Par); ok {
		return append(ParList(s.L), ParList(s.R)...)
	}
	return []Proc{p}
}
