package syntax

import (
	"fmt"
	"sort"

	"bpi/internal/names"
)

// SortIssue reports a channel used at conflicting arities. In the polyadic
// calculus a listener at the wrong arity can neither receive nor discard a
// broadcast (rules 4 and 12–14 only fire on matching tuples), silently
// blocking the sender — almost always a modelling mistake.
type SortIssue struct {
	Channel names.Name
	Arities []int
}

func (s SortIssue) String() string {
	return fmt.Sprintf("channel %s used at arities %v", s.Channel, s.Arities)
}

// CheckSorts infers the arity at which every literal channel name is used
// (as a prefix subject) across p and the bodies of env, and reports channels
// used at more than one arity. Names received at runtime cannot be tracked
// and are ignored, so this is a conservative lint: no issue does not prove
// well-sortedness, but every reported issue is a genuine conflict between
// syntactic occurrences.
func CheckSorts(p Proc, env Env) []SortIssue {
	use := map[names.Name]map[int]bool{}
	record := func(ch names.Name, arity int) {
		if use[ch] == nil {
			use[ch] = map[int]bool{}
		}
		use[ch][arity] = true
	}
	var walk func(q Proc, bound names.Set)
	walk = func(q Proc, bound names.Set) {
		switch t := q.(type) {
		case Nil, Call:
		case Prefix:
			switch pre := t.Pre.(type) {
			case Tau:
			case Out:
				if !bound.Contains(pre.Ch) {
					record(pre.Ch, len(pre.Args))
				}
			case In:
				if !bound.Contains(pre.Ch) {
					record(pre.Ch, len(pre.Params))
				}
			}
			inner := bound
			if in, ok := t.Pre.(In); ok {
				inner = extend(bound, in.Params)
			}
			walk(t.Cont, inner)
		case Sum:
			walk(t.L, bound)
			walk(t.R, bound)
		case Par:
			walk(t.L, bound)
			walk(t.R, bound)
		case Res:
			// A restricted channel is still sort-checked: the conflict is
			// just as fatal inside the scope. Track it under its own name
			// (shadowing may conflate distinct binders; conservative lint).
			walk(t.Body, bound)
		case Match:
			walk(t.Then, bound)
			walk(t.Else, bound)
		case Rec:
			walk(t.Body, extend(bound, t.Params))
		}
	}
	walk(p, nil)
	for _, id := range env.Idents() {
		d, _ := env.Lookup(id)
		walk(d.Body, names.NewSet(d.Params...))
	}
	var out []SortIssue
	chans := make([]names.Name, 0, len(use))
	for ch := range use {
		chans = append(chans, ch)
	}
	sort.Slice(chans, func(i, j int) bool { return chans[i] < chans[j] })
	for _, ch := range chans {
		if len(use[ch]) > 1 {
			ar := make([]int, 0, len(use[ch]))
			for a := range use[ch] {
				ar = append(ar, a)
			}
			sort.Ints(ar)
			out = append(out, SortIssue{ch, ar})
		}
	}
	return out
}
