package syntax

import (
	"fmt"
	"strings"
)

// Precedence levels for printing: sum < par < unary (prefix, restriction,
// match, rec) < atoms.
const (
	precSum = iota
	precPar
	precUnary
	precAtom
)

// String renders p in the library's concrete syntax, which the parser
// accepts back (round-trip):
//
//	0                    nil
//	tau.p                silent prefix
//	a?(x,y).p            input
//	a!(x,y).p            output (a! for the empty tuple)
//	p + q                choice
//	p | q                parallel
//	nu x.p               restriction (body extends to the next + or |)
//	[x=y](p, q)          match; "[x=y]p" abbreviates "[x=y](p, 0)"
//	A(x,y)               identifier call (identifiers start with a capital)
//	(rec A(x).p)(y)      recursion
func String(p Proc) string {
	var b strings.Builder
	writeProc(p, &b, precSum)
	return b.String()
}

// Print is an alias of String — the name the fuzzing and oracle layers use
// when stating the round-trip law parser.Parse(syntax.Print(p)) ≡ p.
func Print(p Proc) string { return String(p) }

func writeProc(p Proc, b *strings.Builder, ctx int) {
	switch t := p.(type) {
	case Nil:
		b.WriteByte('0')
	case Prefix:
		open(b, ctx, precUnary)
		writePre(t.Pre, b)
		if _, isNil := t.Cont.(Nil); !isNil {
			b.WriteByte('.')
			writeProc(t.Cont, b, precUnary)
		}
		clos(b, ctx, precUnary)
	case Sum:
		open(b, ctx, precSum)
		writeProc(t.L, b, precPar) // children need at least par precedence
		b.WriteString(" + ")
		writeSumTail(t.R, b)
		clos(b, ctx, precSum)
	case Par:
		open(b, ctx, precPar)
		writeProc(t.L, b, precUnary)
		b.WriteString(" | ")
		writeParTail(t.R, b)
		clos(b, ctx, precPar)
	case Res:
		open(b, ctx, precUnary)
		b.WriteString("nu ")
		b.WriteString(nameStr(t.X))
		b.WriteByte('.')
		writeProc(t.Body, b, precUnary)
		clos(b, ctx, precUnary)
	case Match:
		open(b, ctx, precUnary)
		fmt.Fprintf(b, "[%s=%s]", nameStr(t.X), nameStr(t.Y))
		if _, elseNil := t.Else.(Nil); elseNil {
			writeProc(t.Then, b, precUnary)
		} else {
			b.WriteByte('(')
			writeProc(t.Then, b, precSum)
			b.WriteString(", ")
			writeProc(t.Else, b, precSum)
			b.WriteByte(')')
		}
		clos(b, ctx, precUnary)
	case Call:
		b.WriteString(t.Id)
		b.WriteByte('(')
		writeNameList(t.Args, b)
		b.WriteByte(')')
	case Rec:
		b.WriteString("(rec ")
		b.WriteString(t.Id)
		b.WriteByte('(')
		writeNameList(t.Params, b)
		b.WriteString(").")
		writeProc(t.Body, b, precSum)
		b.WriteString(")(")
		writeNameList(t.Args, b)
		b.WriteByte(')')
	default:
		panic("syntax: unknown process node")
	}
}

// writeSumTail keeps right-nested sums flat: a + b + c.
func writeSumTail(p Proc, b *strings.Builder) {
	if s, ok := p.(Sum); ok {
		writeProc(s.L, b, precPar)
		b.WriteString(" + ")
		writeSumTail(s.R, b)
		return
	}
	writeProc(p, b, precPar)
}

// writeParTail keeps right-nested parallels flat: a | b | c.
func writeParTail(p Proc, b *strings.Builder) {
	if s, ok := p.(Par); ok {
		writeProc(s.L, b, precUnary)
		b.WriteString(" | ")
		writeParTail(s.R, b)
		return
	}
	writeProc(p, b, precUnary)
}

func open(b *strings.Builder, ctx, mine int) {
	if mine < ctx {
		b.WriteByte('(')
	}
}

func clos(b *strings.Builder, ctx, mine int) {
	if mine < ctx {
		b.WriteByte(')')
	}
}

func writePre(pre Pre, b *strings.Builder) {
	switch t := pre.(type) {
	case Tau:
		b.WriteString("tau")
	case In:
		b.WriteString(nameStr(t.Ch))
		b.WriteByte('?')
		b.WriteByte('(')
		writeNameList(t.Params, b)
		b.WriteByte(')')
	case Out:
		b.WriteString(nameStr(t.Ch))
		b.WriteByte('!')
		if len(t.Args) > 0 {
			b.WriteByte('(')
			writeNameList(t.Args, b)
			b.WriteByte(')')
		}
	default:
		panic("syntax: unknown prefix")
	}
}

func writeNameList(ns []Name, b *strings.Builder) {
	for i, n := range ns {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(nameStr(n))
	}
}

// nameStr renders a name, making canonical binders readable.
func nameStr(n Name) string {
	if IsCanonName(n) {
		return "_" + string(n[1:])
	}
	return string(n)
}
