package syntax

import (
	"testing"

	"bpi/internal/names"
)

// A term exercising every binder-carrying node: bn collects input params,
// restriction binders and recursion params, through sums, parallels and
// both branches of a match.
func TestBoundNamesAllNodes(t *testing.T) {
	p := Par{
		L: Sum{
			L: Prefix{In{Ch: "a", Params: []Name{"x", "y"}}, Nil{}},
			R: Res{X: "v", Body: Call{Id: "A", Args: []Name{"a"}}},
		},
		R: Match{
			X: "a", Y: "b",
			Then: Rec{Id: "A", Params: []Name{"w"}, Body: Prefix{Out{Ch: "w"}, Nil{}}, Args: []Name{"a"}},
			Else: Prefix{Tau{}, Nil{}},
		},
	}
	got := BoundNames(p)
	want := names.NewSet("x", "y", "v", "w")
	if !got.Equal(want) {
		t.Fatalf("BoundNames = %v, want %v", got, want)
	}
}

func TestAllNamesIsUnion(t *testing.T) {
	p := Res{X: "v", Body: Prefix{Out{Ch: "a", Args: []Name{"v"}}, Nil{}}}
	got := AllNames(p)
	want := FreeNames(p).Union(BoundNames(p))
	if !got.Equal(want) {
		t.Fatalf("AllNames = %v, want fn ∪ bn = %v", got, want)
	}
	if !got.Contains("a") || !got.Contains("v") {
		t.Fatalf("AllNames = %v, want both a (free) and v (bound)", got)
	}
}

// Print is the alias the round-trip law is stated with; right-nested sums
// and parallels must print flat, without redundant parentheses.
func TestPrintFlattensNestedSumAndPar(t *testing.T) {
	out := func(ch Name) Proc { return Prefix{Out{Ch: ch}, Nil{}} }
	sum3 := Sum{out("a"), Sum{out("b"), out("c")}}
	if s := Print(sum3); s != "a! + b! + c!" {
		t.Fatalf("Print(sum3) = %q, want %q", s, "a! + b! + c!")
	}
	par3 := Par{out("a"), Par{out("b"), out("c")}}
	if s := Print(par3); s != "a! | b! | c!" {
		t.Fatalf("Print(par3) = %q, want %q", s, "a! | b! | c!")
	}
	if Print(sum3) != String(sum3) {
		t.Fatalf("Print and String disagree")
	}
}

func TestRenameSingleName(t *testing.T) {
	p := Prefix{Out{Ch: "a", Args: []Name{"a", "b"}}, Nil{}}
	got := Rename(p, "a", "c")
	want := Prefix{Out{Ch: "c", Args: []Name{"c", "b"}}, Nil{}}
	if !Equal(got, want) {
		t.Fatalf("Rename = %s, want %s", String(got), String(want))
	}
}

// One rule-(11) unfolding must rewrite matching Calls into the recursion
// template through every node shape, leave non-matching Calls alone, and
// stop at an inner Rec that shadows the identifier.
func TestUnfoldRewritesThroughAllNodes(t *testing.T) {
	shadow := Rec{Id: "A", Params: nil, Body: Call{Id: "A"}}
	other := Rec{Id: "B", Params: nil, Body: Call{Id: "A"}}
	body := Sum{
		L: Prefix{Tau{}, Par{Call{Id: "A", Args: []Name{"x"}}, Call{Id: "C"}}},
		R: Res{X: "v", Body: Match{X: "a", Y: "b", Then: shadow, Else: other}},
	}
	r := Rec{Id: "A", Params: []Name{"x"}, Body: body, Args: []Name{"n"}}
	got := Unfold(r)

	tmpl := Rec{Id: "A", Params: []Name{"x"}, Body: body}
	wantL := Prefix{Tau{}, Par{
		Rec{Id: "A", Params: []Name{"x"}, Body: body, Args: []Name{"n"}},
		Call{Id: "C"},
	}}
	sum, ok := got.(Sum)
	if !ok {
		t.Fatalf("Unfold = %T, want Sum", got)
	}
	if !Equal(sum.L, wantL) {
		t.Fatalf("left arm = %s, want %s", String(sum.L), String(wantL))
	}
	res, ok := sum.R.(Res)
	if !ok {
		t.Fatalf("right arm = %T, want Res", sum.R)
	}
	m := res.Body.(Match)
	if !Equal(m.Then, shadow) {
		t.Fatalf("shadowing inner rec was rewritten: %s", String(m.Then))
	}
	wantElse := Rec{Id: "B", Params: nil, Body: tmpl, Args: nil}
	if gotRec := m.Else.(Rec); gotRec.Id != "B" {
		t.Fatalf("non-shadowing rec lost its id: %s", String(m.Else))
	} else if !Equal(gotRec.Body, wantElse.Body) {
		t.Fatalf("Call{A} under rec B not rewritten to the template: %s", String(gotRec.Body))
	}
}

// FreeIdents: a Call under a Rec with the same Id is bound; re-binding an
// already-bound Id must not un-bind it on the way out; everything else
// (prefix, sum, par, res, match) is traversed transparently.
func TestFreeIdents(t *testing.T) {
	free := Call{Id: "B"}
	inner := Rec{Id: "A", Params: nil, Body: Prefix{Tau{}, Call{Id: "A"}}}
	p := Par{
		L: Sum{
			L: Prefix{Tau{}, free},
			R: Res{X: "v", Body: Match{X: "a", Y: "a", Then: Call{Id: "C"}, Else: Nil{}}},
		},
		R: Rec{Id: "A", Params: nil, Body: Sum{Call{Id: "A"}, inner}},
	}
	got := FreeIdents(p)
	if len(got) != 2 || !got["B"] || !got["C"] {
		t.Fatalf("FreeIdents = %v, want {B, C}", got)
	}
	if got["A"] {
		t.Fatalf("A occurs only under its own Rec binders, must not be free: %v", got)
	}
}
