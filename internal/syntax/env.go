package syntax

import (
	"fmt"
	"sort"

	"bpi/internal/names"
)

// Def is a (mutually recursive) process definition A(x̃) ≝ p. Definitions
// play the role of the paper's process identifiers with globally known
// bodies (as in the Detector / Item examples); they are equivalent in
// expressive power to rec but far more readable for systems of equations.
type Def struct {
	Params []Name
	Body   Proc
}

// Env maps identifiers to their definitions. The zero value (nil) is the
// empty environment. Envs are treated as immutable once built.
type Env map[string]Def

// Define adds (or replaces) a definition, allocating the map if needed, and
// returns the environment.
func (e Env) Define(id string, params []Name, body Proc) Env {
	if e == nil {
		e = make(Env)
	}
	e[id] = Def{params, body}
	return e
}

// Lookup resolves an identifier.
func (e Env) Lookup(id string) (Def, bool) {
	d, ok := e[id]
	return d, ok
}

// Expand resolves a Call against the environment, instantiating the
// definition body: A⟨ỹ⟩ ↦ body[ỹ/x̃]. It returns an error for unknown
// identifiers or arity mismatches.
func (e Env) Expand(c Call) (Proc, error) {
	d, ok := e[c.Id]
	if !ok {
		return nil, fmt.Errorf("syntax: undefined process identifier %q", c.Id)
	}
	if len(d.Params) != len(c.Args) {
		return nil, fmt.Errorf("syntax: %s expects %d arguments, got %d", c.Id, len(d.Params), len(c.Args))
	}
	return Instantiate(d.Body, d.Params, c.Args), nil
}

// Idents returns the defined identifiers in sorted order.
func (e Env) Idents() []string {
	out := make([]string, 0, len(e))
	for id := range e {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}

// Validate checks the whole environment: every definition body must only
// call identifiers defined in e (or bound by an inner rec), arities must
// match, every recursive occurrence must be guarded (the paper's standing
// assumption), and definition bodies must not have free names outside their
// parameters (so that Expand yields closed behaviour).
func (e Env) Validate() error {
	return e.ValidateWith(nil)
}

// ValidateWith is Validate allowing the given names as global constants
// free in definition bodies (e.g. tag names compared with matches).
func (e Env) ValidateWith(globals names.Set) error {
	for id, d := range e {
		if fn := FreeNames(d.Body).Minus(names.NewSet(d.Params...)).Minus(globals); fn.Len() > 0 {
			return fmt.Errorf("syntax: definition %s has free names %v outside its parameters", id, fn)
		}
		if err := e.checkCalls(id, d.Body); err != nil {
			return err
		}
	}
	// Guardedness: a definition may refer to others at unguarded positions
	// (plain composition), but no *cycle* of unguarded references may exist
	// — that is what makes one-step unfolding diverge.
	if cyc := e.unguardedCycle(); cyc != "" {
		return fmt.Errorf("syntax: unguarded recursion through %s", cyc)
	}
	return nil
}

// unguardedCycle returns the identifier of some definition on an unguarded
// reference cycle, or "" when none exists.
func (e Env) unguardedCycle() string {
	// refs[id] = identifiers called at unguarded positions in id's body.
	refs := map[string][]string{}
	for id, d := range e {
		set := map[string]bool{}
		unguardedCalls(d.Body, set)
		for callee := range set {
			if _, ok := e[callee]; ok {
				refs[id] = append(refs[id], callee)
			}
		}
		sort.Strings(refs[id])
	}
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var visit func(id string) bool
	visit = func(id string) bool {
		switch color[id] {
		case grey:
			return true
		case black:
			return false
		}
		color[id] = grey
		for _, callee := range refs[id] {
			if visit(callee) {
				return true
			}
		}
		color[id] = black
		return false
	}
	for _, id := range e.Idents() {
		if visit(id) {
			return id
		}
	}
	return ""
}

// unguardedCalls collects identifiers that occur at unguarded positions
// (not underneath any prefix) in p. Rec binders shadow their identifier.
func unguardedCalls(p Proc, out map[string]bool) {
	switch t := p.(type) {
	case Nil, Prefix:
		// Anything under a prefix is guarded.
	case Sum:
		unguardedCalls(t.L, out)
		unguardedCalls(t.R, out)
	case Par:
		unguardedCalls(t.L, out)
		unguardedCalls(t.R, out)
	case Res:
		unguardedCalls(t.Body, out)
	case Match:
		unguardedCalls(t.Then, out)
		unguardedCalls(t.Else, out)
	case Call:
		out[t.Id] = true
	case Rec:
		// The rec identifier is handled by CheckGuarded on the rec itself;
		// for environment cycles only free identifiers matter.
		inner := map[string]bool{}
		unguardedCalls(t.Body, inner)
		for id := range inner {
			if id != t.Id {
				out[id] = true
			}
		}
	}
}

// allGuardSeeds returns the set of identifiers whose calls must be guarded:
// every identifier of the environment (mutual recursion).
func allGuardSeeds(e Env) map[string]bool {
	ids := make(map[string]bool, len(e))
	for id := range e {
		ids[id] = true
	}
	return ids
}

// checkCalls verifies that every Call in body resolves (environment or
// enclosing rec) with the right arity.
func (e Env) checkCalls(owner string, body Proc) error {
	var walk func(p Proc, recs map[string]int) error
	walk = func(p Proc, recs map[string]int) error {
		switch t := p.(type) {
		case Nil:
			return nil
		case Prefix:
			return walk(t.Cont, recs)
		case Sum:
			if err := walk(t.L, recs); err != nil {
				return err
			}
			return walk(t.R, recs)
		case Par:
			if err := walk(t.L, recs); err != nil {
				return err
			}
			return walk(t.R, recs)
		case Res:
			return walk(t.Body, recs)
		case Match:
			if err := walk(t.Then, recs); err != nil {
				return err
			}
			return walk(t.Else, recs)
		case Call:
			if n, ok := recs[t.Id]; ok {
				if n != len(t.Args) {
					return fmt.Errorf("syntax: in %s, rec call %s expects %d args, got %d", owner, t.Id, n, len(t.Args))
				}
				return nil
			}
			d, ok := e[t.Id]
			if !ok {
				return fmt.Errorf("syntax: in %s, call to undefined identifier %s", owner, t.Id)
			}
			if len(d.Params) != len(t.Args) {
				return fmt.Errorf("syntax: in %s, call %s expects %d args, got %d", owner, t.Id, len(d.Params), len(t.Args))
			}
			return nil
		case Rec:
			if len(t.Params) != len(t.Args) {
				return fmt.Errorf("syntax: in %s, rec %s has %d params but %d args", owner, t.Id, len(t.Params), len(t.Args))
			}
			inner := make(map[string]int, len(recs)+1)
			for k, v := range recs {
				inner[k] = v
			}
			inner[t.Id] = len(t.Params)
			return walk(t.Body, inner)
		default:
			panic("syntax: unknown process node")
		}
	}
	return walk(body, map[string]int{})
}

// CheckGuarded reports whether every occurrence of a recursion identifier
// (both rec-bound identifiers and the given environment identifiers) in p
// occurs under a prefix, as the paper assumes for well-formed recursions.
func CheckGuarded(p Proc, e Env) bool {
	return guardedIn(p, allGuardSeeds(e), false)
}

// guardedIn walks p; watch is the set of identifiers that must appear only
// under a prefix; underPrefix tells whether we are currently guarded.
func guardedIn(p Proc, watch map[string]bool, underPrefix bool) bool {
	switch t := p.(type) {
	case Nil:
		return true
	case Prefix:
		return guardedIn(t.Cont, watch, true)
	case Sum:
		return guardedIn(t.L, watch, underPrefix) && guardedIn(t.R, watch, underPrefix)
	case Par:
		return guardedIn(t.L, watch, underPrefix) && guardedIn(t.R, watch, underPrefix)
	case Res:
		return guardedIn(t.Body, watch, underPrefix)
	case Match:
		return guardedIn(t.Then, watch, underPrefix) && guardedIn(t.Else, watch, underPrefix)
	case Call:
		if watch[t.Id] && !underPrefix {
			return false
		}
		return true
	case Rec:
		inner := make(map[string]bool, len(watch)+1)
		for k := range watch {
			inner[k] = true
		}
		inner[t.Id] = true
		// The recursion body itself starts unguarded; the unfolding of the
		// rec at this point is fine only if its own calls are guarded.
		return guardedIn(t.Body, inner, false)
	default:
		panic("syntax: unknown process node")
	}
}

// Size returns the number of AST nodes of p (a standard term-size metric
// for generators and benchmarks).
func Size(p Proc) int {
	switch t := p.(type) {
	case Nil, Call:
		return 1
	case Prefix:
		return 1 + Size(t.Cont)
	case Sum:
		return 1 + Size(t.L) + Size(t.R)
	case Par:
		return 1 + Size(t.L) + Size(t.R)
	case Res:
		return 1 + Size(t.Body)
	case Match:
		return 1 + Size(t.Then) + Size(t.Else)
	case Rec:
		return 1 + Size(t.Body)
	default:
		panic("syntax: unknown process node")
	}
}

// Depth returns the prefix depth of p: the length of the longest chain of
// prefixes (the induction measure of the completeness proof, Theorem 7).
func Depth(p Proc) int {
	switch t := p.(type) {
	case Nil, Call:
		return 0
	case Prefix:
		return 1 + Depth(t.Cont)
	case Sum:
		return max(Depth(t.L), Depth(t.R))
	case Par:
		return Depth(t.L) + Depth(t.R)
	case Res:
		return Depth(t.Body)
	case Match:
		return max(Depth(t.Then), Depth(t.Else))
	case Rec:
		return Depth(t.Body) // unfoldings can deepen; this is the static depth
	default:
		panic("syntax: unknown process node")
	}
}

// IsFinite reports whether p is a finite process (no recursion and no
// identifier calls) — the fragment covered by the axiomatisation of §5.
func IsFinite(p Proc) bool {
	switch t := p.(type) {
	case Nil:
		return true
	case Prefix:
		return IsFinite(t.Cont)
	case Sum:
		return IsFinite(t.L) && IsFinite(t.R)
	case Par:
		return IsFinite(t.L) && IsFinite(t.R)
	case Res:
		return IsFinite(t.Body)
	case Match:
		return IsFinite(t.Then) && IsFinite(t.Else)
	case Call, Rec:
		return false
	default:
		panic("syntax: unknown process node")
	}
}
