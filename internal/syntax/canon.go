package syntax

import (
	"fmt"
	"strings"

	"bpi/internal/names"
)

// Canonical binder names start with this control byte; they are unwritable
// from user input and never produced by FreshVariant, so Canon output is a
// sound representative of the alpha-equivalence class.
const canonMark = "\x01"

// IsCanonName reports whether n is a canonical binder name produced by Canon.
func IsCanonName(n Name) bool { return strings.HasPrefix(string(n), canonMark) }

// Canon returns the canonical representative of p's alpha-equivalence class:
// every binder is renamed, in a fixed traversal order, to a canonical name.
// Two processes are alpha-equivalent iff their Canon results are
// structurally equal (Equal), and Key(p) can be used as a map key for
// alpha-classes.
func Canon(p Proc) Proc {
	k := 0
	return canon(p, nil, &k)
}

func canonName(k *int) Name {
	*k++
	return Name(fmt.Sprintf("%s%d", canonMark, *k))
}

// canon renames binders to canonical names; env maps in-scope binders to
// their canonical replacements.
func canon(p Proc, env names.Subst, k *int) Proc {
	look := func(n Name) Name { return env.Apply(n) }
	switch t := p.(type) {
	case Nil:
		return t
	case Prefix:
		switch pre := t.Pre.(type) {
		case Tau:
			return Prefix{pre, canon(t.Cont, env, k)}
		case Out:
			return Prefix{Out{look(pre.Ch), env.ApplySlice(pre.Args)}, canon(t.Cont, env, k)}
		case In:
			inner := env.Clone()
			ps := make([]Name, len(pre.Params))
			for i, b := range pre.Params {
				ps[i] = canonName(k)
				inner[b] = ps[i]
			}
			return Prefix{In{look(pre.Ch), ps}, canon(t.Cont, inner, k)}
		}
		panic("syntax: unknown prefix")
	case Sum:
		return Sum{canon(t.L, env, k), canon(t.R, env, k)}
	case Par:
		return Par{canon(t.L, env, k), canon(t.R, env, k)}
	case Res:
		inner := env.Clone()
		x := canonName(k)
		inner[t.X] = x
		return Res{x, canon(t.Body, inner, k)}
	case Match:
		return Match{look(t.X), look(t.Y), canon(t.Then, env, k), canon(t.Else, env, k)}
	case Call:
		return Call{t.Id, env.ApplySlice(t.Args)}
	case Rec:
		inner := env.Clone()
		ps := make([]Name, len(t.Params))
		for i, b := range t.Params {
			ps[i] = canonName(k)
			inner[b] = ps[i]
		}
		return Rec{t.Id, ps, canon(t.Body, inner, k), env.ApplySlice(t.Args)}
	default:
		panic("syntax: unknown process node")
	}
}

// Equal reports structural equality of two terms (names compared verbatim;
// use AlphaEqual for equality up to renaming of bound names).
func Equal(p, q Proc) bool {
	switch a := p.(type) {
	case Nil:
		_, ok := q.(Nil)
		return ok
	case Prefix:
		b, ok := q.(Prefix)
		return ok && preEqual(a.Pre, b.Pre) && Equal(a.Cont, b.Cont)
	case Sum:
		b, ok := q.(Sum)
		return ok && Equal(a.L, b.L) && Equal(a.R, b.R)
	case Par:
		b, ok := q.(Par)
		return ok && Equal(a.L, b.L) && Equal(a.R, b.R)
	case Res:
		b, ok := q.(Res)
		return ok && a.X == b.X && Equal(a.Body, b.Body)
	case Match:
		b, ok := q.(Match)
		return ok && a.X == b.X && a.Y == b.Y && Equal(a.Then, b.Then) && Equal(a.Else, b.Else)
	case Call:
		b, ok := q.(Call)
		return ok && a.Id == b.Id && namesEqual(a.Args, b.Args)
	case Rec:
		b, ok := q.(Rec)
		return ok && a.Id == b.Id && namesEqual(a.Params, b.Params) &&
			namesEqual(a.Args, b.Args) && Equal(a.Body, b.Body)
	default:
		panic("syntax: unknown process node")
	}
}

func preEqual(a, b Pre) bool {
	switch x := a.(type) {
	case Tau:
		_, ok := b.(Tau)
		return ok
	case In:
		y, ok := b.(In)
		return ok && x.Ch == y.Ch && namesEqual(x.Params, y.Params)
	case Out:
		y, ok := b.(Out)
		return ok && x.Ch == y.Ch && namesEqual(x.Args, y.Args)
	default:
		panic("syntax: unknown prefix")
	}
}

func namesEqual(a, b []Name) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// AlphaEqual reports p =α q.
func AlphaEqual(p, q Proc) bool { return Equal(Canon(p), Canon(q)) }

// Key returns a compact string that identifies p's alpha-equivalence class;
// alpha-equivalent terms (and only those) share a Key. It is suitable as a
// map key for state interning during LTS exploration.
func Key(p Proc) string {
	var b strings.Builder
	writeKey(Canon(p), &b)
	return b.String()
}

// ExactKey returns an unambiguous encoding of p itself, binder names
// verbatim: two terms share an ExactKey iff they are structurally Equal.
// Key (alpha-invariant) identifies alpha-classes and is the right state
// key; ExactKey identifies the exact syntax, which is what compiled
// transition programs (internal/tprog) must be cached under — two
// alpha-variant terms have textually different transitions.
func ExactKey(p Proc) string {
	var b strings.Builder
	writeKey(p, &b)
	return b.String()
}

// writeKey emits an unambiguous prefix encoding of the term.
func writeKey(p Proc, b *strings.Builder) {
	writeNames := func(ns []Name) {
		for i, n := range ns {
			if i > 0 {
				b.WriteByte(',')
			}
			b.WriteString(string(n))
		}
	}
	switch t := p.(type) {
	case Nil:
		b.WriteByte('0')
	case Prefix:
		switch pre := t.Pre.(type) {
		case Tau:
			b.WriteString("t.")
		case In:
			b.WriteString("i(")
			b.WriteString(string(pre.Ch))
			b.WriteByte(';')
			writeNames(pre.Params)
			b.WriteString(").")
		case Out:
			b.WriteString("o(")
			b.WriteString(string(pre.Ch))
			b.WriteByte(';')
			writeNames(pre.Args)
			b.WriteString(").")
		}
		writeKey(t.Cont, b)
	case Sum:
		b.WriteString("+(")
		writeKey(t.L, b)
		b.WriteByte('|')
		writeKey(t.R, b)
		b.WriteByte(')')
	case Par:
		b.WriteString("&(")
		writeKey(t.L, b)
		b.WriteByte('|')
		writeKey(t.R, b)
		b.WriteByte(')')
	case Res:
		b.WriteString("n(")
		b.WriteString(string(t.X))
		b.WriteByte(')')
		writeKey(t.Body, b)
	case Match:
		b.WriteString("m(")
		b.WriteString(string(t.X))
		b.WriteByte('=')
		b.WriteString(string(t.Y))
		b.WriteByte(')')
		b.WriteByte('(')
		writeKey(t.Then, b)
		b.WriteByte('|')
		writeKey(t.Else, b)
		b.WriteByte(')')
	case Call:
		b.WriteString("c(")
		b.WriteString(t.Id)
		b.WriteByte(';')
		writeNames(t.Args)
		b.WriteByte(')')
	case Rec:
		b.WriteString("r(")
		b.WriteString(t.Id)
		b.WriteByte(';')
		writeNames(t.Params)
		b.WriteByte(';')
		writeNames(t.Args)
		b.WriteByte(')')
		writeKey(t.Body, b)
	default:
		panic("syntax: unknown process node")
	}
}
