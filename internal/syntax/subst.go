package syntax

import (
	"fmt"
	"strings"

	"bpi/internal/names"
)

// FreshVariant returns a name based on base that is not in avoid. The result
// is deterministic given (base, avoid), which keeps substitution results
// reproducible and hashable. Machine-generated variants carry the reserved
// fresh marker, so they cannot collide with user names other than through
// avoid (which is checked).
func FreshVariant(base Name, avoid names.Set) Name {
	// Strip an existing marker suffix so repeated renaming does not grow.
	b := string(base)
	if i := strings.Index(b, names.FreshMarker); i >= 0 {
		b = b[:i]
	}
	if b == "" {
		b = "x"
	}
	for i := 1; ; i++ {
		cand := Name(fmt.Sprintf("%s%s%d", b, names.FreshMarker, i))
		if !avoid.Contains(cand) {
			return cand
		}
	}
}

// Apply performs the capture-avoiding simultaneous substitution pσ. Binders
// that would capture a name in σ's codomain (or that clash with σ's domain)
// are alpha-renamed to fresh variants. The result shares unaffected
// subterms with p.
func Apply(p Proc, s names.Subst) Proc {
	if s.IsIdentity() {
		return p
	}
	return applySubst(p, s)
}

func applySubst(p Proc, s names.Subst) Proc {
	switch t := p.(type) {
	case Nil:
		return t
	case Prefix:
		switch pre := t.Pre.(type) {
		case Tau:
			return Prefix{pre, applySubst(t.Cont, s)}
		case Out:
			return Prefix{Out{s.Apply(pre.Ch), s.ApplySlice(pre.Args)}, applySubst(t.Cont, s)}
		case In:
			params, cont := renameBinders(pre.Params, t.Cont, s)
			return Prefix{In{s.Apply(pre.Ch), params}, cont}
		}
		panic("syntax: unknown prefix")
	case Sum:
		return Sum{applySubst(t.L, s), applySubst(t.R, s)}
	case Par:
		return Par{applySubst(t.L, s), applySubst(t.R, s)}
	case Res:
		xs, body := renameBinders([]Name{t.X}, t.Body, s)
		return Res{xs[0], body}
	case Match:
		return Match{s.Apply(t.X), s.Apply(t.Y), applySubst(t.Then, s), applySubst(t.Else, s)}
	case Call:
		return Call{t.Id, s.ApplySlice(t.Args)}
	case Rec:
		params, body := renameBinders(t.Params, t.Body, s)
		return Rec{t.Id, params, body, s.ApplySlice(t.Args)}
	default:
		panic("syntax: unknown process node")
	}
}

// renameBinders pushes substitution s under the binders bs of body:
// it removes the binders from s's domain and alpha-renames any binder that
// would capture a codomain name. It returns the (possibly renamed) binders
// and the transformed body.
func renameBinders(bs []Name, body Proc, s names.Subst) ([]Name, Proc) {
	inner := s.Without(bs...)
	// Which binders would capture a name introduced by inner?
	free := FreeNames(body)
	danger := make(names.Set)
	for o, n := range inner {
		if o != n && free.Contains(o) {
			danger = danger.Add(n)
		}
	}
	needs := false
	for _, b := range bs {
		if danger.Contains(b) {
			needs = true
			break
		}
	}
	if !needs {
		if inner.IsIdentity() {
			return bs, body
		}
		return bs, applySubst(body, inner)
	}
	// Alpha-rename clashing binders to fresh variants, avoiding everything
	// in sight: current free names, codomain, other binders, and the
	// substitution's domain.
	avoid := free.Clone()
	avoid = avoid.AddAll(inner.Codomain()).AddAll(inner.Domain()).AddSlice(bs)
	newBs := make([]Name, len(bs))
	ren := names.Subst{}
	for i, b := range bs {
		if danger.Contains(b) {
			nb := FreshVariant(b, avoid)
			avoid = avoid.Add(nb)
			newBs[i] = nb
			ren[b] = nb
		} else {
			newBs[i] = b
		}
	}
	body = applySubst(body, ren)
	return newBs, applySubst(body, inner)
}

// Rename is substitution of a single name: p[new/old].
func Rename(p Proc, old, new Name) Proc {
	return Apply(p, names.Single(old, new))
}

// Instantiate applies the simultaneous substitution [args/params] to body.
// It panics on arity mismatch (callers validate arities at construction).
func Instantiate(body Proc, params, args []Name) Proc {
	return Apply(body, names.FromSlices(params, args))
}

// substIdent replaces every free occurrence of the identifier id in p by the
// recursion rec (adjusting arguments): Call{id, ỹ} becomes
// Rec{rec.Id, rec.Params, rec.Body, ỹ}. This is the p[(rec X(x̃).p)/X]
// operation of rule (11). Name binders need no care here because rec is
// closed with respect to names at unfolding time only through its Args;
// the standard side condition (x̃ ⊇ fn(body)) makes the recursion body
// name-closed relative to its parameters, which CheckClosedRec verifies.
func substIdent(p Proc, id string, recTemplate Rec) Proc {
	switch t := p.(type) {
	case Nil:
		return t
	case Prefix:
		return Prefix{t.Pre, substIdent(t.Cont, id, recTemplate)}
	case Sum:
		return Sum{substIdent(t.L, id, recTemplate), substIdent(t.R, id, recTemplate)}
	case Par:
		return Par{substIdent(t.L, id, recTemplate), substIdent(t.R, id, recTemplate)}
	case Res:
		return Res{t.X, substIdent(t.Body, id, recTemplate)}
	case Match:
		return Match{t.X, t.Y, substIdent(t.Then, id, recTemplate), substIdent(t.Else, id, recTemplate)}
	case Call:
		if t.Id == id {
			return Rec{recTemplate.Id, recTemplate.Params, recTemplate.Body, t.Args}
		}
		return t
	case Rec:
		if t.Id == id { // inner rec shadows id
			return t
		}
		return Rec{t.Id, t.Params, substIdent(t.Body, id, recTemplate), t.Args}
	default:
		panic("syntax: unknown process node")
	}
}

// Unfold performs one unfolding of a recursion per rule (11):
// (rec X(x̃).p)⟨ỹ⟩ → p[(rec X(x̃).p)/X][ỹ/x̃].
func Unfold(r Rec) Proc {
	if len(r.Params) != len(r.Args) {
		panic(fmt.Sprintf("syntax: rec %s arity mismatch: %d params, %d args", r.Id, len(r.Params), len(r.Args)))
	}
	body := substIdent(r.Body, r.Id, Rec{Id: r.Id, Params: r.Params, Body: r.Body})
	return Instantiate(body, r.Params, r.Args)
}
