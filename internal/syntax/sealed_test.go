package syntax

import "testing"

// The Proc and Pre interfaces are sealed — exactly these node types exist.
// Every consumer (printer, substitution, semantics, compiler) switches
// exhaustively over this list; this test pins it.
func TestASTSealed(t *testing.T) {
	procs := []Proc{
		Nil{}, Prefix{Pre: Tau{}, Cont: Nil{}}, Sum{L: Nil{}, R: Nil{}},
		Par{L: Nil{}, R: Nil{}}, Res{X: "x", Body: Nil{}},
		Match{X: "a", Y: "b", Then: Nil{}, Else: Nil{}},
		Call{Id: "D"}, Rec{Id: "D", Body: Nil{}},
	}
	if len(procs) != 8 {
		t.Fatalf("%d process node types, want 8", len(procs))
	}
	for _, p := range procs {
		p.isProc()
	}
	pres := []Pre{Tau{}, In{Ch: "a"}, Out{Ch: "a"}}
	if len(pres) != 3 {
		t.Fatalf("%d prefix types, want 3", len(pres))
	}
	for _, p := range pres {
		p.isPre()
	}
}
