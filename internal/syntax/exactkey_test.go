package syntax

import "testing"

// TestExactKeyStructural pins the contract compiled transition programs
// (internal/tprog) cache under: two terms share an ExactKey iff they are
// structurally Equal — binder names verbatim, so alpha-variants get
// DIFFERENT exact keys even though Key (the alpha-invariant state key)
// identifies them.
func TestExactKeyStructural(t *testing.T) {
	a, b, x, y := Name("a"), Name("b"), Name("x"), Name("y")
	rec := Rec{Id: "A", Params: []Name{x}, Body: Recv(a, []Name{y}, Call{Id: "A", Args: []Name{y}}), Args: []Name{b}}
	terms := []Proc{
		PNil,
		TauP(PNil),
		SendN(a, b),
		RecvN(a, x),
		Sum{SendN(a), RecvN(b)},
		Par{SendN(a), RecvN(b)},
		Res{X: x, Body: SendN(x)},
		Match{X: a, Y: b, Then: SendN(a), Else: RecvN(b)},
		Call{Id: "A", Args: []Name{a, b}},
		rec,
	}
	for i, p := range terms {
		for j, q := range terms {
			same := ExactKey(p) == ExactKey(q)
			if same != (i == j) {
				t.Errorf("ExactKey(%s) vs ExactKey(%s): same=%v, want %v",
					String(p), String(q), same, i == j)
			}
			if Equal(p, q) != (i == j) {
				t.Errorf("Equal(%s, %s) = %v, want %v", String(p), String(q), Equal(p, q), i == j)
			}
		}
	}
}

// TestExactKeyAlphaVariants: alpha-variant terms are one state (same Key)
// but distinct compilation units (different ExactKey) — their transitions
// differ textually in the bound names.
func TestExactKeyAlphaVariants(t *testing.T) {
	a, x, y := Name("a"), Name("x"), Name("y")
	p := Recv(a, []Name{x}, SendN(x))
	q := Recv(a, []Name{y}, SendN(y))
	if !AlphaEqual(p, q) {
		t.Fatal("alpha-variants not AlphaEqual")
	}
	if Key(p) != Key(q) {
		t.Error("alpha-variants have different state Keys")
	}
	if ExactKey(p) == ExactKey(q) {
		t.Error("alpha-variants share an ExactKey: the tprog cache would conflate them")
	}

	r := Res{X: x, Body: SendN(x)}
	s := Res{X: y, Body: SendN(y)}
	if Key(r) != Key(s) || ExactKey(r) == ExactKey(s) {
		t.Error("restriction alpha-variants: want equal Keys, distinct ExactKeys")
	}
}

// TestEqualFieldMismatches walks Equal/preEqual through every near-miss:
// same node kind, one field off.
func TestEqualFieldMismatches(t *testing.T) {
	a, b, x, y := Name("a"), Name("b"), Name("x"), Name("y")
	rec := Rec{Id: "A", Params: []Name{x}, Body: SendN(x), Args: []Name{a}}
	pairs := []struct {
		name string
		p, q Proc
	}{
		{"out-channel", SendN(a, x), SendN(b, x)},
		{"out-args", SendN(a, x), SendN(a, y)},
		{"out-arity", SendN(a, x), SendN(a, x, y)},
		{"in-params", RecvN(a, x), RecvN(a, y)},
		{"pre-kind", SendN(a), RecvN(a)},
		{"call-id", Call{Id: "A"}, Call{Id: "B"}},
		{"call-args", Call{Id: "A", Args: []Name{a}}, Call{Id: "A", Args: []Name{b}}},
		{"rec-id", rec, Rec{Id: "B", Params: []Name{x}, Body: SendN(x), Args: []Name{a}}},
		{"rec-params", rec, Rec{Id: "A", Params: []Name{y}, Body: SendN(x), Args: []Name{a}}},
		{"rec-args", rec, Rec{Id: "A", Params: []Name{x}, Body: SendN(x), Args: []Name{b}}},
		{"rec-body", rec, Rec{Id: "A", Params: []Name{x}, Body: SendN(y), Args: []Name{a}}},
		{"match-else", Match{X: a, Y: b, Then: PNil, Else: SendN(a)}, Match{X: a, Y: b, Then: PNil, Else: SendN(b)}},
	}
	for _, tc := range pairs {
		if Equal(tc.p, tc.q) {
			t.Errorf("%s: Equal(%s, %s) = true", tc.name, String(tc.p), String(tc.q))
		}
		if ExactKey(tc.p) == ExactKey(tc.q) {
			t.Errorf("%s: ExactKey collision between %s and %s", tc.name, String(tc.p), String(tc.q))
		}
	}
}

// TestCanonRec: canonicalisation renames Rec binders (params) but leaves
// the instantiating args in the outer scope.
func TestCanonRec(t *testing.T) {
	a, x, y := Name("a"), Name("x"), Name("y")
	p := Rec{Id: "A", Params: []Name{x}, Body: SendN(x), Args: []Name{a}}
	q := Rec{Id: "A", Params: []Name{y}, Body: SendN(y), Args: []Name{a}}
	if !AlphaEqual(p, q) {
		t.Error("Rec terms differing only in the Param binder are not AlphaEqual")
	}
	r := Rec{Id: "A", Params: []Name{x}, Body: SendN(x), Args: []Name{y}}
	if AlphaEqual(p, r) {
		t.Error("Rec terms with different free Args are AlphaEqual")
	}
}
