package syntax

import "testing"

// TestSimplifyIdempotentRegression pins a counterexample once found by
// TestQuickSimplifyIdempotentAndShrinking (quick seed 8772016212620242561):
// the decided match collapses to tau|tau inside a composition, and the first
// Simplify pass used to leave that Par nested — (tau|tau)|tau — while a
// second pass re-associated it. Re-flattening after child simplification
// makes one pass canonical.
func TestSimplifyIdempotentRegression(t *testing.T) {
	p := Par{
		If(c, b,
			If(b, b, Recv(a, []Name{"c_b"}, PNil), SendN(b, c)),
			Par{TauP(PNil), TauP(PNil)}),
		Restrict(TauP(PNil), "c_n", "b_n"),
	}
	s1 := Simplify(p)
	s2 := Simplify(s1)
	if !Equal(s1, s2) {
		t.Errorf("Simplify not idempotent: %s then %s", String(s1), String(s2))
	}
	if Size(s1) > Size(p) {
		t.Errorf("Simplify grew the term: %d > %d", Size(s1), Size(p))
	}
	// The same collapse inside a sum: the then-branch is itself a sum and
	// must be deduped against its sibling summand in one pass.
	q := Sum{If(a, a, Sum{TauP(PNil), SendN(b)}, PNil), TauP(PNil)}
	q1 := Simplify(q)
	if !Equal(q1, Simplify(q1)) {
		t.Errorf("sum collapse not idempotent: %s", String(q1))
	}
	if len(SumList(q1)) != 2 {
		t.Errorf("nested sum not deduped in one pass: %s", String(q1))
	}
}
