package pi

import (
	"strings"
	"testing"
)

func TestLabelStrings(t *testing.T) {
	cases := map[string]Label{
		"tau":    {Kind: 't'},
		"a!b":    {Kind: '!', Ch: a, Obj: b},
		"a!(^z)": {Kind: 'b', Ch: a, Obj: z},
		"a?x":    {Kind: '?', Ch: a, Obj: x},
	}
	for want, l := range cases {
		if got := l.String(); got != want {
			t.Errorf("label %q, want %q", got, want)
		}
	}
}

func TestStringRendering(t *testing.T) {
	p := Res{z, Par{Out{a, z, Nil{}}, Sum{In{a, x, Tau{Nil{}}}, Match{x, y, Nil{}, Nil{}}}}}
	s := String(p)
	for _, frag := range []string{"nu z.", "a!z.", "a?(x).", "tau.", "[x=y]", "|", "+"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String missing %q in %s", frag, s)
		}
	}
}

func TestKeyAlphaInvariance(t *testing.T) {
	p := Res{z, Out{a, z, In{z, x, Nil{}}}}
	q := Res{w, Out{a, w, In{w, y, Nil{}}}}
	if Key(p) != Key(q) {
		t.Error("alpha-equivalent π terms should share keys")
	}
	r := Res{z, Out{a, z, In{a, x, Nil{}}}}
	if Key(p) == Key(r) {
		t.Error("key collision")
	}
}

func TestSumSteps(t *testing.T) {
	p := Sum{Out{a, b, Nil{}}, Tau{Nil{}}}
	ts := Steps(p)
	if len(ts) != 2 {
		t.Fatalf("sum steps: %v", ts)
	}
}

func TestMatchSteps(t *testing.T) {
	eq := Match{a, a, Out{b, b, Nil{}}, Out{c, c, Nil{}}}
	if ts := Steps(eq); len(ts) != 1 || ts[0].Label.Ch != b {
		t.Fatalf("match-true: %v", ts)
	}
	ne := Match{a, b, Out{b, b, Nil{}}, Out{c, c, Nil{}}}
	if ts := Steps(ne); len(ts) != 1 || ts[0].Label.Ch != c {
		t.Fatalf("match-false: %v", ts)
	}
}

func TestBoundOutputBinderAvoidsSibling(t *testing.T) {
	// (νz āz) | z̄w: the extruded binder must be renamed away from the
	// sibling's free z.
	p := Par{Res{z, Out{a, z, Nil{}}}, Out{z, w, Nil{}}}
	var bound []Label
	for _, tr := range Steps(p) {
		if tr.Label.Kind == 'b' {
			bound = append(bound, tr.Label)
		}
	}
	if len(bound) != 1 {
		t.Fatalf("bound outputs: %v", bound)
	}
	if bound[0].Obj == z {
		t.Fatalf("binder collided with sibling: %v", bound[0])
	}
}

func TestFreeOfAllNodes(t *testing.T) {
	p := Res{z, Par{Out{a, z, Nil{}}, Sum{In{b, x, Out{x, c, Nil{}}}, Match{c, d, Tau{Nil{}}, Nil{}}}}}
	fn := Free(p)
	for _, n := range []Name{a, b, c, d} {
		if !fn.Contains(n) {
			t.Errorf("free names missing %s: %v", n, fn)
		}
	}
	if fn.Contains(z) || fn.Contains(x) {
		t.Errorf("bound name leaked: %v", fn)
	}
}

func TestWeakBarbsBudget(t *testing.T) {
	if _, err := WeakBarbs(Par{Tau{Tau{Nil{}}}, Tau{Nil{}}}, 1); err == nil {
		t.Error("budget exhaustion not reported")
	}
}
