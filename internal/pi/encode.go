package pi

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Encode translates a choice-free π-calculus process into the bπ-calculus
// (the direction the paper states is possible, §6: a "uniform" encoding
// adequate with respect to barbed equivalence; the reverse direction is
// impossible by the authors' separation result [3]).
//
// Rendezvous over a broadcast medium is implemented with a lock protocol:
//
//	⟦a̅b.P⟧   = rec S. νl ā⟨l⟩.( l(r).r̄⟨b⟩.⟦P⟧ + τ.S )
//	⟦a(x).P⟧ = rec R. a(l).νr l̄⟨r⟩.( r(x).⟦P⟧ + τ.R )
//
// A sender offers a fresh lock l on a; every current listener on a receives
// the offer (broadcast cannot be refused) and competes by returning a fresh
// reply channel r on l; the sender commits to the first reply and transfers
// the payload point-to-point on r. The τ-escapes let a participant whose
// offer or reply was lost in a race retry, so every π-reachable
// configuration remains reachable (adequacy with respect to may-barbs,
// checked in tests); the price is administrative divergence, as usual for
// such encodings. Sum is not in the encoded fragment and is rejected.
func Encode(p Proc) (syntax.Proc, error) {
	e := &encoder{}
	return e.encode(p)
}

type encoder struct{ recs int }

func (e *encoder) fresh(base string) names.Name {
	e.recs++
	return names.Name(fmt.Sprintf("%s%s%d", base, names.FreshMarker, e.recs))
}

func (e *encoder) recId() string {
	e.recs++
	return fmt.Sprintf("Enc%d", e.recs)
}

func (e *encoder) encode(p Proc) (syntax.Proc, error) {
	switch t := p.(type) {
	case Nil:
		return syntax.PNil, nil
	case Tau:
		c, err := e.encode(t.Cont)
		if err != nil {
			return nil, err
		}
		return syntax.TauP(c), nil
	case Par:
		l, err := e.encode(t.L)
		if err != nil {
			return nil, err
		}
		r, err := e.encode(t.R)
		if err != nil {
			return nil, err
		}
		return syntax.Par{L: l, R: r}, nil
	case Res:
		b, err := e.encode(t.Body)
		if err != nil {
			return nil, err
		}
		return syntax.Res{X: t.X, Body: b}, nil
	case Match:
		th, err := e.encode(t.Then)
		if err != nil {
			return nil, err
		}
		el, err := e.encode(t.Else)
		if err != nil {
			return nil, err
		}
		return syntax.If(t.X, t.Y, th, el), nil
	case Out:
		cont, err := e.encode(t.Cont)
		if err != nil {
			return nil, err
		}
		fns := Free(p).Sorted()
		id := e.recId()
		l := e.fresh("l")
		r := e.fresh("r")
		body := syntax.Restrict(
			syntax.Send(t.Ch, []names.Name{l},
				syntax.Choice(
					syntax.Recv(l, []names.Name{r},
						syntax.Send(r, []names.Name{t.Arg}, cont)),
					syntax.TauP(syntax.Call{Id: id, Args: fns}),
				)), l)
		return syntax.Rec{Id: id, Params: fns, Body: body, Args: fns}, nil
	case In:
		cont, err := e.encode(t.Cont)
		if err != nil {
			return nil, err
		}
		fns := Free(p).Sorted()
		id := e.recId()
		l := e.fresh("l")
		r := e.fresh("r")
		// Keep the protocol names clear of the π binder.
		body := syntax.Recv(t.Ch, []names.Name{l},
			syntax.Restrict(
				syntax.Send(l, []names.Name{r},
					syntax.Choice(
						syntax.Recv(r, []names.Name{t.Param}, cont),
						syntax.TauP(syntax.Call{Id: id, Args: fns}),
					)), r))
		return syntax.Rec{Id: id, Params: fns, Body: body, Args: fns}, nil
	case Sum:
		return nil, fmt.Errorf("pi: Encode covers the choice-free fragment (found a sum)")
	}
	panic("pi: unknown node")
}
