package pi

import "testing"

func TestSortTransIsDeterministic(t *testing.T) {
	ts := Steps(Sum{
		L: Sum{Out{Ch: "b", Arg: "y", Cont: Nil{}}, Out{Ch: "a", Arg: "x", Cont: Nil{}}},
		R: Tau{Nil{}},
	})
	if len(ts) != 3 {
		t.Fatalf("%d transitions, want 3", len(ts))
	}
	sortTrans(ts)
	for i := 1; i < len(ts); i++ {
		prev := ts[i-1].Label.String() + Key(ts[i-1].Target)
		cur := ts[i].Label.String() + Key(ts[i].Target)
		if prev > cur {
			t.Fatalf("sortTrans left %q before %q", prev, cur)
		}
	}
}
