package pi

import (
	"testing"

	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/semantics"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
	d names.Name = "d"
	w names.Name = "w"
	x names.Name = "x"
	y names.Name = "y"
	z names.Name = "z"
)

func TestStepsPrefixes(t *testing.T) {
	ts := Steps(Out{a, b, Nil{}})
	if len(ts) != 1 || ts[0].Label.String() != "a!b" {
		t.Fatalf("out: %v", ts)
	}
	ts = Steps(In{a, x, Out{x, b, Nil{}}})
	if len(ts) != 1 || ts[0].Label.Kind != '?' {
		t.Fatalf("in: %v", ts)
	}
	ts = Steps(Tau{Nil{}})
	if len(ts) != 1 || ts[0].Label.Kind != 't' {
		t.Fatalf("tau: %v", ts)
	}
}

func TestComm(t *testing.T) {
	// a̅b | a(x).x̄c --τ--> 0 | b̄c: exactly one receiver takes the message.
	p := Par{Out{a, b, Nil{}}, In{a, x, Out{x, c, Nil{}}}}
	var taus []Trans
	for _, tr := range Steps(p) {
		if tr.Label.Kind == 't' {
			taus = append(taus, tr)
		}
	}
	if len(taus) != 1 {
		t.Fatalf("taus: %v", taus)
	}
	if Key(taus[0].Target) != Key(Par{Nil{}, Out{b, c, Nil{}}}) {
		t.Fatalf("comm target: %s", String(taus[0].Target))
	}
}

func TestPointToPointOneReceiverOnly(t *testing.T) {
	// a̅b | a(x).x̄c | a(y).ȳd: the π communication reaches exactly ONE
	// receiver (contrast with the broadcast tests in semantics).
	p := Par{Out{a, b, Nil{}}, Par{In{a, x, Out{x, c, Nil{}}}, In{a, y, Out{y, d, Nil{}}}}}
	var taus []Trans
	for _, tr := range Steps(p) {
		if tr.Label.Kind == 't' {
			taus = append(taus, tr)
		}
	}
	if len(taus) != 2 {
		t.Fatalf("want 2 distinct pairings, got %d", len(taus))
	}
	for _, tr := range taus {
		// In each target exactly one of the receivers is instantiated.
		barbs, err := WeakBarbs(tr.Target, 0)
		if err != nil {
			t.Fatal(err)
		}
		if barbs.Contains(b) && barbs.Contains(c) && barbs.Contains(d) {
			t.Fatalf("both receivers fired: %s", String(tr.Target))
		}
	}
}

func TestCloseExtrusion(t *testing.T) {
	// νz(a̅z.z̄w) | a(x).x(y).c̄y --τ--> νz(z̄w | z(y).c̄y): private z shared;
	// the secret dialogue then surfaces as a barb on c.
	p := Par{
		Res{z, Out{a, z, Out{z, w, Nil{}}}},
		In{a, x, In{x, y, Out{c, y, Nil{}}}},
	}
	var taus []Trans
	for _, tr := range Steps(p) {
		if tr.Label.Kind == 't' {
			taus = append(taus, tr)
		}
	}
	if len(taus) != 1 {
		t.Fatalf("close: %v", Steps(p))
	}
	if _, ok := taus[0].Target.(Res); !ok {
		t.Fatalf("extruded name not re-bound: %s", String(taus[0].Target))
	}
	// The private dialogue continues: next τ carries w, then c̄ barb.
	barbs, err := WeakBarbs(taus[0].Target, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !barbs.Contains(c) {
		t.Fatalf("continuation lost: %v", barbs)
	}
}

func TestResBlocksPrivate(t *testing.T) {
	p := Res{a, Out{a, b, Nil{}}}
	if ts := Steps(p); len(ts) != 0 {
		t.Fatalf("private offer escaped: %v", ts)
	}
}

func TestWeakBarbs(t *testing.T) {
	p := Par{Out{a, b, Nil{}}, In{a, x, Out{x, c, Nil{}}}}
	barbs, err := WeakBarbs(p, 0)
	if err != nil {
		t.Fatal(err)
	}
	if !barbs.Contains(a) || !barbs.Contains(b) {
		t.Fatalf("barbs: %v", barbs)
	}
	if barbs.Contains(c) {
		t.Fatalf("c̄ should never be offered (no b-receiver): %v", barbs)
	}
}

func TestSubstCapture(t *testing.T) {
	// (a(x).x̄y)[y→x] must not capture.
	p := In{a, x, Out{x, y, Nil{}}}
	q := Subst(p, y, x).(In)
	if q.Param == x {
		t.Fatalf("capture: %s", String(q))
	}
	// νx under [y→x].
	r := Res{x, Out{y, x, Nil{}}}
	rr := Subst(r, y, x).(Res)
	if rr.X == x {
		t.Fatalf("res capture: %s", String(rr))
	}
}

// ---- E14: the encoding into bπ ------------------------------------------------

func TestEncodeRejectsSum(t *testing.T) {
	if _, err := Encode(Sum{Nil{}, Nil{}}); err == nil {
		t.Fatal("sum must be rejected")
	}
}

func TestE14EncodingMayBarbs(t *testing.T) {
	sys := semantics.NewSystem(nil)
	samples := []struct {
		name string
		p    Proc
	}{
		{"single-comm", Par{Out{a, b, Nil{}}, In{a, x, Out{x, c, Nil{}}}}},
		{"no-receiver", Out{a, b, Out{b, c, Nil{}}}},
		{"two-receivers", Par{Out{a, b, Nil{}},
			Par{In{a, x, Out{c, x, Nil{}}}, In{a, y, Out{d, y, Nil{}}}}}},
		{"chain", Par{Out{a, b, Nil{}}, In{a, x, Par{Out{x, c, Nil{}}, In{x, y, Out{d, y, Nil{}}}}}}},
		{"tau-guard", Tau{Out{a, b, Nil{}}}},
		{"match", Par{Out{a, b, Nil{}}, In{a, x, Match{x, b, Out{c, x, Nil{}}, Out{d, x, Nil{}}}}}},
		{"extrusion", Par{Res{z, Out{a, z, In{z, y, Out{c, y, Nil{}}}}},
			In{a, x, Out{x, w, Nil{}}}}},
	}
	for _, sc := range samples {
		enc, err := Encode(sc.p)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		want, err := WeakBarbs(sc.p, 0)
		if err != nil {
			t.Fatalf("%s: %v", sc.name, err)
		}
		for _, ch := range Free(sc.p).Sorted() {
			got, err := machine.CanReachBarb(sys, enc, ch, 150000)
			if err != nil {
				t.Fatalf("%s barb %s: %v", sc.name, ch, err)
			}
			if got != want.Contains(ch) {
				t.Errorf("%s: barb %s: encoding=%v source=%v", sc.name, ch, got, want.Contains(ch))
			}
		}
	}
}

func TestTauStepsMetric(t *testing.T) {
	// A chain of two communications needs two τ steps.
	p := Par{Out{a, b, Nil{}},
		Par{In{a, x, Out{c, x, Nil{}}}, In{c, y, Nil{}}}}
	if got := TauSteps(p, 10); got != 2 {
		t.Fatalf("TauSteps = %d", got)
	}
}
