// Package pi implements a monadic π-calculus fragment (Milner–Parrow–Walker
// style, early semantics) as the point-to-point baseline of the paper's
// expressiveness discussion, together with the uniform encoding of the
// (choice-free) π-calculus into the bπ-calculus sketched in the paper's
// Section 6 — a lock-based rendezvous protocol over broadcasts.
package pi

import (
	"fmt"
	"sort"
	"strings"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Name aliases calculus names.
type Name = names.Name

// Proc is a π-calculus process.
type Proc interface{ isPi() }

// Nil is inert.
type Nil struct{}

// Out is the output prefix a̅b.P: a rendezvous offer to exactly one receiver.
type Out struct {
	Ch, Arg Name
	Cont    Proc
}

// In is the input prefix a(x).P.
type In struct {
	Ch, Param Name
	Cont      Proc
}

// Tau is the silent prefix.
type Tau struct{ Cont Proc }

// Sum is choice.
type Sum struct{ L, R Proc }

// Par is parallel composition (handshake communication).
type Par struct{ L, R Proc }

// Res is restriction νx P.
type Res struct {
	X    Name
	Body Proc
}

// Match is (x=y)P,Q.
type Match struct {
	X, Y       Name
	Then, Else Proc
}

func (Nil) isPi()   {}
func (Out) isPi()   {}
func (In) isPi()    {}
func (Tau) isPi()   {}
func (Sum) isPi()   {}
func (Par) isPi()   {}
func (Res) isPi()   {}
func (Match) isPi() {}

// Label is a π transition label.
type Label struct {
	Kind  byte // 't' τ, '!' free output, 'b' bound output, '?' input
	Ch    Name
	Obj   Name
	Bound bool
}

// String renders the label.
func (l Label) String() string {
	switch l.Kind {
	case 't':
		return "tau"
	case '!':
		return fmt.Sprintf("%s!%s", l.Ch, l.Obj)
	case 'b':
		return fmt.Sprintf("%s!(^%s)", l.Ch, l.Obj)
	default:
		return fmt.Sprintf("%s?%s", l.Ch, l.Obj)
	}
}

// Trans is a transition; input transitions are symbolic (Obj is the binder,
// Target the open continuation).
type Trans struct {
	Label  Label
	Target Proc
}

// Free returns fn(p).
func Free(p Proc) names.Set {
	out := make(names.Set)
	var walk func(q Proc, bound names.Set)
	walk = func(q Proc, bound names.Set) {
		add := func(n Name) {
			if !bound.Contains(n) {
				out.Add(n)
			}
		}
		switch t := q.(type) {
		case Nil:
		case Out:
			add(t.Ch)
			add(t.Arg)
			walk(t.Cont, bound)
		case In:
			add(t.Ch)
			inner := bound.Clone()
			if inner == nil {
				inner = make(names.Set)
			}
			walk(t.Cont, inner.Add(t.Param))
		case Tau:
			walk(t.Cont, bound)
		case Sum:
			walk(t.L, bound)
			walk(t.R, bound)
		case Par:
			walk(t.L, bound)
			walk(t.R, bound)
		case Res:
			inner := bound.Clone()
			if inner == nil {
				inner = make(names.Set)
			}
			walk(t.Body, inner.Add(t.X))
		case Match:
			add(t.X)
			add(t.Y)
			walk(t.Then, bound)
			walk(t.Else, bound)
		}
	}
	walk(p, nil)
	return out
}

// Subst is capture-avoiding single substitution p[new/old].
func Subst(p Proc, old, new Name) Proc {
	if old == new {
		return p
	}
	ren := func(n Name) Name {
		if n == old {
			return new
		}
		return n
	}
	switch t := p.(type) {
	case Nil:
		return t
	case Out:
		return Out{ren(t.Ch), ren(t.Arg), Subst(t.Cont, old, new)}
	case In:
		if t.Param == old {
			return In{ren(t.Ch), t.Param, t.Cont}
		}
		if t.Param == new {
			fresh := syntax.FreshVariant(t.Param, Free(t.Cont).Add(old).Add(new))
			return In{ren(t.Ch), fresh, Subst(Subst(t.Cont, t.Param, fresh), old, new)}
		}
		return In{ren(t.Ch), t.Param, Subst(t.Cont, old, new)}
	case Tau:
		return Tau{Subst(t.Cont, old, new)}
	case Sum:
		return Sum{Subst(t.L, old, new), Subst(t.R, old, new)}
	case Par:
		return Par{Subst(t.L, old, new), Subst(t.R, old, new)}
	case Res:
		if t.X == old {
			return t
		}
		if t.X == new {
			fresh := syntax.FreshVariant(t.X, Free(t.Body).Add(old).Add(new))
			return Res{fresh, Subst(Subst(t.Body, t.X, fresh), old, new)}
		}
		return Res{t.X, Subst(t.Body, old, new)}
	case Match:
		return Match{ren(t.X), ren(t.Y), Subst(t.Then, old, new), Subst(t.Else, old, new)}
	}
	panic("pi: unknown node")
}

// Steps returns the transitions of p under the standard early semantics:
// prefixes fire; a communication pairs one output with one input (COMM), a
// bound output with an input under the restriction (CLOSE).
func Steps(p Proc) []Trans {
	switch t := p.(type) {
	case Nil:
		return nil
	case Out:
		return []Trans{{Label{Kind: '!', Ch: t.Ch, Obj: t.Arg}, t.Cont}}
	case In:
		return []Trans{{Label{Kind: '?', Ch: t.Ch, Obj: t.Param}, t.Cont}}
	case Tau:
		return []Trans{{Label{Kind: 't'}, t.Cont}}
	case Sum:
		return append(Steps(t.L), Steps(t.R)...)
	case Match:
		if t.X == t.Y {
			return Steps(t.Then)
		}
		return Steps(t.Else)
	case Res:
		var out []Trans
		for _, tr := range Steps(t.Body) {
			l := tr.Label
			switch {
			case l.Kind == 't':
				out = append(out, Trans{l, Res{t.X, tr.Target}})
			case l.Ch == t.X:
				// Communication on the private channel is invisible outside;
				// prefixes on it cannot fire alone.
				continue
			case l.Kind == '!' && l.Obj == t.X:
				out = append(out, Trans{Label{Kind: 'b', Ch: l.Ch, Obj: t.X}, tr.Target})
			case l.Kind == '?' && l.Obj == t.X:
				// Alpha-rename the symbolic binder away from the restriction.
				fresh := syntax.FreshVariant(t.X, Free(tr.Target).Add(t.X).Add(l.Ch))
				out = append(out, Trans{Label{Kind: '?', Ch: l.Ch, Obj: fresh},
					Res{t.X, Subst(tr.Target, l.Obj, fresh)}})
			case l.Kind == 'b' && l.Obj == t.X:
				fresh := syntax.FreshVariant(t.X, Free(tr.Target).Add(t.X).Add(l.Ch))
				out = append(out, Trans{Label{Kind: 'b', Ch: l.Ch, Obj: fresh},
					Res{t.X, Subst(tr.Target, l.Obj, fresh)}})
			default:
				out = append(out, Trans{l, Res{t.X, tr.Target}})
			}
		}
		return out
	case Par:
		var out []Trans
		ls, rs := Steps(t.L), Steps(t.R)
		for _, lt := range ls {
			tgt := lt.Target
			l := lt.Label
			if l.Kind == '?' {
				// Keep the binder clear of the sibling's free names.
				if Free(t.R).Contains(l.Obj) {
					fresh := syntax.FreshVariant(l.Obj, Free(tgt).AddAll(Free(t.R)).Add(l.Ch))
					tgt = Subst(tgt, l.Obj, fresh)
					l = Label{Kind: '?', Ch: l.Ch, Obj: fresh}
				}
			}
			if l.Kind == 'b' && Free(t.R).Contains(l.Obj) {
				fresh := syntax.FreshVariant(l.Obj, Free(tgt).AddAll(Free(t.R)).Add(l.Ch))
				tgt = Subst(tgt, l.Obj, fresh)
				l = Label{Kind: 'b', Ch: l.Ch, Obj: fresh}
			}
			out = append(out, Trans{l, Par{tgt, t.R}})
		}
		for _, rt := range rs {
			tgt := rt.Target
			l := rt.Label
			if l.Kind == '?' && Free(t.L).Contains(l.Obj) {
				fresh := syntax.FreshVariant(l.Obj, Free(tgt).AddAll(Free(t.L)).Add(l.Ch))
				tgt = Subst(tgt, l.Obj, fresh)
				l = Label{Kind: '?', Ch: l.Ch, Obj: fresh}
			}
			if l.Kind == 'b' && Free(t.L).Contains(l.Obj) {
				fresh := syntax.FreshVariant(l.Obj, Free(tgt).AddAll(Free(t.L)).Add(l.Ch))
				tgt = Subst(tgt, l.Obj, fresh)
				l = Label{Kind: 'b', Ch: l.Ch, Obj: fresh}
			}
			out = append(out, Trans{l, Par{t.L, tgt}})
		}
		// COMM and CLOSE, both orientations.
		out = append(out, comms(ls, rs, t.L, t.R, true)...)
		out = append(out, comms(rs, ls, t.R, t.L, false)...)
		return out
	}
	panic("pi: unknown node")
}

// comms pairs outputs of movers with inputs of the sibling.
func comms(movers, sibs []Trans, _, _ Proc, moverLeft bool) []Trans {
	var out []Trans
	pair := func(m, s Proc) Proc {
		if moverLeft {
			return Par{m, s}
		}
		return Par{s, m}
	}
	for _, mt := range movers {
		ml := mt.Label
		if ml.Kind != '!' && ml.Kind != 'b' {
			continue
		}
		for _, st := range sibs {
			sl := st.Label
			if sl.Kind != '?' || sl.Ch != ml.Ch {
				continue
			}
			recv := Subst(st.Target, sl.Obj, ml.Obj)
			target := pair(mt.Target, recv)
			if ml.Kind == 'b' {
				// CLOSE: re-bind the extruded name around both.
				target = Res{ml.Obj, target}
			}
			out = append(out, Trans{Label{Kind: 't'}, target})
		}
	}
	return out
}

// WeakBarbs returns the channels a with p ⇓a: a τ*-derivative offers an
// output on a. Exploration is bounded by maxStates.
func WeakBarbs(p Proc, maxStates int) (names.Set, error) {
	if maxStates <= 0 {
		maxStates = 4096
	}
	out := make(names.Set)
	seen := map[string]bool{}
	queue := []Proc{p}
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		k := Key(cur)
		if seen[k] {
			continue
		}
		if len(seen) >= maxStates {
			return nil, fmt.Errorf("pi: state budget exhausted")
		}
		seen[k] = true
		for _, tr := range Steps(cur) {
			switch tr.Label.Kind {
			case '!', 'b':
				out.Add(tr.Label.Ch)
			case 't':
				queue = append(queue, tr.Target)
			}
		}
	}
	return out, nil
}

// TauSteps counts the length of the longest τ-only run from p (bounded), a
// cost metric for the expressiveness benchmarks.
func TauSteps(p Proc, bound int) int {
	best := 0
	var rec func(q Proc, depth int)
	seen := map[string]int{}
	rec = func(q Proc, depth int) {
		if depth > best {
			best = depth
		}
		if depth >= bound {
			return
		}
		k := Key(q)
		if prev, ok := seen[k]; ok && prev >= depth {
			return
		}
		seen[k] = depth
		for _, tr := range Steps(q) {
			if tr.Label.Kind == 't' {
				rec(tr.Target, depth+1)
			}
		}
	}
	rec(p, 0)
	return best
}

// Key returns an alpha-canonical key for p.
func Key(p Proc) string {
	var b strings.Builder
	k := 0
	writeKey(p, &b, names.Subst{}, &k)
	return b.String()
}

func writeKey(p Proc, b *strings.Builder, env names.Subst, k *int) {
	bind := func(n Name) (Name, names.Subst) {
		*k++
		canon := Name(fmt.Sprintf("\x01%d", *k))
		inner := env.Clone()
		inner[n] = canon
		return canon, inner
	}
	switch t := p.(type) {
	case Nil:
		b.WriteByte('0')
	case Out:
		fmt.Fprintf(b, "%s!%s.", env.Apply(t.Ch), env.Apply(t.Arg))
		writeKey(t.Cont, b, env, k)
	case In:
		canon, inner := bind(t.Param)
		fmt.Fprintf(b, "%s?%s.", env.Apply(t.Ch), canon)
		writeKey(t.Cont, b, inner, k)
	case Tau:
		b.WriteString("t.")
		writeKey(t.Cont, b, env, k)
	case Sum:
		b.WriteString("+(")
		writeKey(t.L, b, env, k)
		b.WriteByte('|')
		writeKey(t.R, b, env, k)
		b.WriteByte(')')
	case Par:
		b.WriteString("&(")
		writeKey(t.L, b, env, k)
		b.WriteByte('|')
		writeKey(t.R, b, env, k)
		b.WriteByte(')')
	case Res:
		canon, inner := bind(t.X)
		fmt.Fprintf(b, "n(%s)", canon)
		writeKey(t.Body, b, inner, k)
	case Match:
		fmt.Fprintf(b, "m(%s=%s)(", env.Apply(t.X), env.Apply(t.Y))
		writeKey(t.Then, b, env, k)
		b.WriteByte('|')
		writeKey(t.Else, b, env, k)
		b.WriteByte(')')
	default:
		panic("pi: unknown node")
	}
}

// String renders a π process.
func String(p Proc) string {
	switch t := p.(type) {
	case Nil:
		return "0"
	case Out:
		return fmt.Sprintf("%s!%s.%s", t.Ch, t.Arg, String(t.Cont))
	case In:
		return fmt.Sprintf("%s?(%s).%s", t.Ch, t.Param, String(t.Cont))
	case Tau:
		return "tau." + String(t.Cont)
	case Sum:
		return "(" + String(t.L) + " + " + String(t.R) + ")"
	case Par:
		return "(" + String(t.L) + " | " + String(t.R) + ")"
	case Res:
		return fmt.Sprintf("nu %s.%s", t.X, String(t.Body))
	case Match:
		return fmt.Sprintf("[%s=%s](%s, %s)", t.X, t.Y, String(t.Then), String(t.Else))
	}
	panic("pi: unknown node")
}

// sortTrans orders transitions deterministically (testing helper).
func sortTrans(ts []Trans) {
	sort.SliceStable(ts, func(i, j int) bool {
		return ts[i].Label.String()+Key(ts[i].Target) < ts[j].Label.String()+Key(ts[j].Target)
	})
}
