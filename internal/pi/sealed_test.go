package pi

import "testing"

// Proc is sealed: exactly these eight π-fragment node types exist.
func TestProcSealed(t *testing.T) {
	procs := []Proc{Nil{}, Out{}, In{}, Tau{}, Sum{}, Par{}, Res{}, Match{}}
	if len(procs) != 8 {
		t.Fatalf("%d node types, want 8", len(procs))
	}
	for _, p := range procs {
		p.isPi()
	}
}
