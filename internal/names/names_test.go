package names

import (
	"testing"
	"testing/quick"
)

func TestValid(t *testing.T) {
	cases := []struct {
		n    Name
		want bool
	}{
		{"a", true},
		{"chan12", true},
		{"", false},
		{"a" + FreshMarker + "1", false},
	}
	for _, c := range cases {
		if got := Valid(c.n); got != c.want {
			t.Errorf("Valid(%q) = %v, want %v", c.n, got, c.want)
		}
	}
}

func TestSupplyFreshDistinct(t *testing.T) {
	s := NewSupply("a")
	seen := NewSet()
	for i := 0; i < 1000; i++ {
		n := s.Fresh("")
		if seen.Contains(n) {
			t.Fatalf("duplicate fresh name %q", n)
		}
		if !IsFresh(n) {
			t.Fatalf("fresh name %q not marked fresh", n)
		}
		seen = seen.Add(n)
	}
}

func TestSupplyFreshHintStripsMarker(t *testing.T) {
	s := NewSupply("a")
	n1 := s.Fresh("b")
	n2 := s.Fresh(string(n1)) // re-freshening a fresh name must stay short
	if len(n2) > len(n1)+4 {
		t.Errorf("re-freshened name grew: %q -> %q", n1, n2)
	}
	if n1 == n2 {
		t.Errorf("fresh names collided: %q", n1)
	}
}

func TestSupplyFork(t *testing.T) {
	s := NewSupply("a")
	f := s.Fork()
	seen := NewSet()
	for i := 0; i < 200; i++ {
		a, b := s.Fresh(""), f.Fresh("")
		if seen.Contains(a) || seen.Contains(b) || a == b {
			t.Fatalf("fork collision: %q %q", a, b)
		}
		seen = seen.Add(a).Add(b)
	}
}

func TestSetOps(t *testing.T) {
	s := NewSet("a", "b", "c")
	u := NewSet("b", "d")
	if !s.Contains("a") || s.Contains("d") {
		t.Fatal("membership wrong")
	}
	if got := s.Union(u); !got.Equal(NewSet("a", "b", "c", "d")) {
		t.Errorf("union = %v", got)
	}
	if got := s.Minus(u); !got.Equal(NewSet("a", "c")) {
		t.Errorf("minus = %v", got)
	}
	if got := s.Intersect(u); !got.Equal(NewSet("b")) {
		t.Errorf("intersect = %v", got)
	}
	if s.Disjoint(u) {
		t.Error("s and u are not disjoint")
	}
	if !s.Disjoint(NewSet("x", "y")) {
		t.Error("expected disjoint")
	}
	if s.String() != "{a, b, c}" {
		t.Errorf("String() = %q", s.String())
	}
}

func TestSetAddNil(t *testing.T) {
	var s Set
	s = s.Add("a")
	if !s.Contains("a") {
		t.Fatal("Add on nil set lost element")
	}
	var s2 Set
	s2 = s2.AddAll(NewSet("b"))
	if !s2.Contains("b") {
		t.Fatal("AddAll on nil set lost element")
	}
}

func TestSetSortedDeterministic(t *testing.T) {
	s := NewSet("z", "a", "m")
	got := s.Sorted()
	want := []Name{"a", "m", "z"}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("Sorted() = %v", got)
		}
	}
}

func TestSubstApply(t *testing.T) {
	s := Single("a", "b")
	if s.Apply("a") != "b" || s.Apply("c") != "c" {
		t.Fatal("Apply wrong")
	}
	if !Single("a", "a").IsIdentity() {
		t.Fatal("x/x should be identity")
	}
	var nilS Subst
	if nilS.Apply("a") != "a" {
		t.Fatal("nil subst must be identity")
	}
}

func TestSubstFromSlices(t *testing.T) {
	s := FromSlices([]Name{"x", "y"}, []Name{"y", "x"})
	if s.Apply("x") != "y" || s.Apply("y") != "x" {
		t.Fatalf("swap broken: %v", s)
	}
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic on arity mismatch")
		}
	}()
	FromSlices([]Name{"x"}, []Name{})
}

func TestSubstApplySliceAliasing(t *testing.T) {
	in := []Name{"a", "b"}
	s := Single("a", "z")
	out := s.ApplySlice(in)
	if &in[0] == &out[0] {
		t.Fatal("ApplySlice must not alias input when changing it")
	}
	if in[0] != "a" {
		t.Fatal("input mutated")
	}
	id := Identity()
	if got := id.ApplySlice(in); &got[0] != &in[0] {
		t.Error("identity ApplySlice should return input")
	}
}

func TestSubstDomainCodomain(t *testing.T) {
	s := Subst{"a": "b", "c": "c"}
	if !s.Domain().Equal(NewSet("a")) {
		t.Errorf("Domain = %v", s.Domain())
	}
	if !s.Codomain().Equal(NewSet("b")) {
		t.Errorf("Codomain = %v", s.Codomain())
	}
}

func TestSubstCompose(t *testing.T) {
	s := Single("a", "b")
	u := Single("b", "c")
	c := s.Compose(u)
	if c.Apply("a") != "c" {
		t.Errorf("compose: a -> %v, want c", c.Apply("a"))
	}
	if c.Apply("b") != "c" {
		t.Errorf("compose: b -> %v, want c", c.Apply("b"))
	}
}

func TestSubstComposeAssociative(t *testing.T) {
	// Property: (h∘g)∘f == h∘(g∘f) extensionally.
	f := func(af, bf, ag, bg, ah, bh uint8) bool {
		univ := []Name{"a", "b", "c", "d"}
		pick := func(x uint8) Name { return univ[int(x)%len(univ)] }
		sf := Single(pick(af), pick(bf))
		sg := Single(pick(ag), pick(bg))
		sh := Single(pick(ah), pick(bh))
		left := sf.Compose(sg).Compose(sh)
		right := sf.Compose(sg.Compose(sh))
		return left.Equal(right)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSubstWithout(t *testing.T) {
	s := Subst{"a": "b", "c": "d"}
	w := s.Without("a")
	if w.Apply("a") != "a" || w.Apply("c") != "d" {
		t.Fatalf("Without wrong: %v", w)
	}
	if s.Apply("a") != "b" {
		t.Fatal("Without mutated receiver")
	}
	if got := s.Without("zz"); got.Apply("a") != "b" {
		t.Fatal("Without on absent name changed behaviour")
	}
}

func TestSubstInjective(t *testing.T) {
	if !Single("a", "b").Injective() {
		t.Error("single renaming should be injective")
	}
	fuse := Subst{"a": "c", "b": "c"}
	if fuse.Injective() {
		t.Error("fusion must not be injective")
	}
}

func TestSubstString(t *testing.T) {
	s := Subst{"b": "x", "a": "y", "c": "c"}
	if got := s.String(); got != "[a↦y, b↦x]" {
		t.Errorf("String() = %q", got)
	}
}

func TestAllFusionsCount(t *testing.T) {
	dom := []Name{"a", "b"}
	cod := []Name{"a", "b", "c"}
	subs := AllFusions(dom, cod)
	if len(subs) != 9 {
		t.Fatalf("expected 3^2=9 fusions, got %d", len(subs))
	}
	seen := map[string]bool{}
	for _, s := range subs {
		k := string(s.Apply("a")) + "/" + string(s.Apply("b"))
		if seen[k] {
			t.Fatalf("duplicate fusion %v", s)
		}
		seen[k] = true
	}
}

func TestAllFusionsEmptyDomain(t *testing.T) {
	subs := AllFusions(nil, []Name{"a"})
	if len(subs) != 1 || !subs[0].IsIdentity() {
		t.Fatalf("empty domain should yield the identity only: %v", subs)
	}
}
