package names

import (
	"sort"
	"strings"
)

// Subst is a finite-support substitution on names: a total function that is
// the identity outside its proper domain. It corresponds to the σ of the
// paper (Section 4: the congruence ~c closes ~+ under all substitutions).
//
// The zero value (nil map) is the identity substitution.
type Subst map[Name]Name

// Identity returns an explicit identity substitution.
func Identity() Subst { return Subst{} }

// Single returns the substitution [new/old] (replace old by new).
func Single(old, new Name) Subst {
	if old == new {
		return Subst{}
	}
	return Subst{old: new}
}

// FromSlices builds the simultaneous substitution [news/olds].
// It panics if the slices have different lengths (caller bug: arity
// mismatches must be caught earlier, at Call/Rec construction).
func FromSlices(olds, news []Name) Subst {
	if len(olds) != len(news) {
		panic("names: substitution slices of unequal length")
	}
	s := make(Subst, len(olds))
	for i, o := range olds {
		if o != news[i] {
			s[o] = news[i]
		} else {
			// A later pair may still remap o; simultaneous semantics keeps
			// the first binding for duplicate olds, matching textual order.
			if _, dup := s[o]; !dup {
				s[o] = news[i]
			}
		}
	}
	return s
}

// Apply returns σ(n).
func (s Subst) Apply(n Name) Name {
	if s == nil {
		return n
	}
	if m, ok := s[n]; ok {
		return m
	}
	return n
}

// ApplySlice maps σ over a slice, returning a fresh slice (never aliasing
// the input when a change occurs; returns the input unchanged otherwise).
func (s Subst) ApplySlice(ns []Name) []Name {
	changed := false
	for _, n := range ns {
		if s.Apply(n) != n {
			changed = true
			break
		}
	}
	if !changed {
		return ns
	}
	out := make([]Name, len(ns))
	for i, n := range ns {
		out[i] = s.Apply(n)
	}
	return out
}

// IsIdentity reports whether σ acts as the identity (its proper domain is
// empty after discounting trivial x↦x entries).
func (s Subst) IsIdentity() bool {
	for o, n := range s {
		if o != n {
			return false
		}
	}
	return true
}

// Domain returns the proper domain {x | σ(x) ≠ x} (paper: prdom(σ)).
func (s Subst) Domain() Set {
	d := make(Set)
	for o, n := range s {
		if o != n {
			d = d.Add(o)
		}
	}
	return d
}

// Codomain returns the proper codomain {σ(x) | x ∈ prdom(σ)} (prcod(σ)).
func (s Subst) Codomain() Set {
	c := make(Set)
	for o, n := range s {
		if o != n {
			c = c.Add(n)
		}
	}
	return c
}

// Restrict returns σ restricted to the names in keep (identity elsewhere).
func (s Subst) Restrict(keep Set) Subst {
	out := make(Subst)
	for o, n := range s {
		if keep.Contains(o) {
			out[o] = n
		}
	}
	return out
}

// Without returns σ with the given names removed from its domain; used when
// a substitution passes under a binder for those names.
func (s Subst) Without(bound ...Name) Subst {
	if s == nil {
		return nil
	}
	needCopy := false
	for _, b := range bound {
		if _, ok := s[b]; ok {
			needCopy = true
			break
		}
	}
	if !needCopy {
		return s
	}
	out := make(Subst, len(s))
	for o, n := range s {
		out[o] = n
	}
	for _, b := range bound {
		delete(out, b)
	}
	return out
}

// Compose returns the substitution τ∘σ: first σ, then τ
// (i.e. (τ∘σ)(x) = τ(σ(x))).
func (s Subst) Compose(after Subst) Subst {
	out := make(Subst, len(s)+len(after))
	for o, n := range s {
		out[o] = after.Apply(n)
	}
	for o, n := range after {
		if _, ok := s[o]; !ok {
			out[o] = n
		}
	}
	return out
}

// Injective reports whether σ is injective on its proper domain ∪ identity
// (no two distinct names are fused).
func (s Subst) Injective() bool {
	seen := make(map[Name]Name, len(s))
	for o, n := range s {
		if prev, ok := seen[n]; ok && prev != o {
			return false
		}
		seen[n] = o
		// Fusing a domain name onto an untouched name also breaks injectivity
		// when that untouched name is itself in play; callers that need
		// global injectivity should restrict domains first. Here we check
		// the usual condition: σ injective on prdom.
	}
	return true
}

// Equal reports extensional equality of two substitutions.
func (s Subst) Equal(t Subst) bool {
	for o, n := range s {
		if t.Apply(o) != n {
			return false
		}
	}
	for o, n := range t {
		if s.Apply(o) != n {
			return false
		}
	}
	return true
}

// Clone returns an independent copy.
func (s Subst) Clone() Subst {
	out := make(Subst, len(s))
	for o, n := range s {
		out[o] = n
	}
	return out
}

// String renders the substitution deterministically as [a↦b, c↦d].
func (s Subst) String() string {
	type pair struct{ o, n Name }
	pairs := make([]pair, 0, len(s))
	for o, n := range s {
		if o != n {
			pairs = append(pairs, pair{o, n})
		}
	}
	sort.Slice(pairs, func(i, j int) bool { return pairs[i].o < pairs[j].o })
	b := strings.Builder{}
	b.WriteByte('[')
	for i, p := range pairs {
		if i > 0 {
			b.WriteString(", ")
		}
		b.WriteString(string(p.o))
		b.WriteString("↦")
		b.WriteString(string(p.n))
	}
	b.WriteByte(']')
	return b.String()
}

// AllFusions enumerates every substitution from dom into cod (|cod|^|dom|
// functions), in a deterministic order. This is the exact closure needed to
// decide the congruence ~c on terms whose free names are dom, taking
// cod = dom (identifying free names in all possible ways); identifications
// with genuinely fresh targets cannot distinguish more (they are injective
// renamings, preserved by bisimilarity — Lemma 18 of the paper).
func AllFusions(dom, cod []Name) []Subst {
	if len(dom) == 0 {
		return []Subst{{}}
	}
	rest := AllFusions(dom[1:], cod)
	out := make([]Subst, 0, len(rest)*len(cod))
	for _, target := range cod {
		for _, tail := range rest {
			s := tail.Clone()
			s[dom[0]] = target
			out = append(out, s)
		}
	}
	return out
}
