package names

import "testing"

// Coverage of the small Set/Subst conveniences the engines use indirectly.

func TestSetSliceHelpers(t *testing.T) {
	var s Set // nil zero value: AddSlice must allocate
	s = s.AddSlice([]Name{"a", "b", "b"})
	if s.Len() != 2 || !s.Contains("a") || !s.Contains("b") {
		t.Fatalf("AddSlice: %v", s)
	}
	if !s.ContainsAny([]Name{"z", "b"}) {
		t.Error("ContainsAny missed a member")
	}
	if s.ContainsAny([]Name{"z", "y"}) || s.ContainsAny(nil) {
		t.Error("ContainsAny invented a member")
	}
	s.Remove("b")
	if s.Len() != 1 || s.Contains("b") {
		t.Errorf("Remove left %v", s)
	}
	s.Remove("never-there") // no-op, must not panic
}

func TestSetEqual(t *testing.T) {
	cases := []struct {
		a, b Set
		want bool
	}{
		{NewSet("a", "b"), NewSet("b", "a"), true},
		{NewSet("a"), NewSet("a", "b"), false}, // length mismatch
		{NewSet("a", "c"), NewSet("a", "b"), false},
		{nil, NewSet(), true},
	}
	for i, c := range cases {
		if got := c.a.Equal(c.b); got != c.want {
			t.Errorf("case %d: Equal = %t, want %t", i, got, c.want)
		}
	}
}

func TestNewSupplyDefaultsHint(t *testing.T) {
	s := NewSupply("")
	n := s.Fresh("")
	if !IsFresh(n) || n[0] != 'x' {
		t.Errorf("empty-hint supply produced %q", n)
	}
	named := NewSupply("y")
	if m := named.Fresh(""); m[0] != 'y' {
		t.Errorf("hinted supply produced %q", m)
	}
}

func TestSubstRestrict(t *testing.T) {
	s := Subst{"a": "x", "b": "y", "c": "z"}
	r := s.Restrict(NewSet("a", "c", "unmapped"))
	if len(r) != 2 || r.Apply("a") != "x" || r.Apply("c") != "z" {
		t.Fatalf("Restrict: %v", r)
	}
	if r.Apply("b") != "b" {
		t.Error("restricted-away entry still maps")
	}
}

func TestSubstIsIdentity(t *testing.T) {
	if !(Subst{}).IsIdentity() || !(Subst{"a": "a"}).IsIdentity() {
		t.Error("trivial substitutions not identity")
	}
	if (Subst{"a": "b"}).IsIdentity() {
		t.Error("a↦b reported as identity")
	}
}

func TestSubstEqualExtensional(t *testing.T) {
	// Extensional: trivial x↦x entries don't matter, both directions checked.
	if !(Subst{"a": "b", "c": "c"}).Equal(Subst{"a": "b"}) {
		t.Error("trivial entry broke equality")
	}
	if (Subst{"a": "b"}).Equal(Subst{"a": "b", "d": "e"}) {
		t.Error("missing mapping not detected (t-side sweep)")
	}
	if (Subst{"a": "b"}).Equal(Subst{"a": "c"}) {
		t.Error("conflicting mapping not detected")
	}
}

func TestFromSlicesDuplicateOlds(t *testing.T) {
	// Simultaneous semantics: the first binding wins for a duplicated old,
	// even when the later pair is trivial.
	s := FromSlices([]Name{"a", "a"}, []Name{"b", "a"})
	if s.Apply("a") != "b" {
		t.Errorf("duplicate old: a ↦ %q, want b", s.Apply("a"))
	}
	defer func() {
		if recover() == nil {
			t.Error("unequal slice lengths did not panic")
		}
	}()
	FromSlices([]Name{"a"}, nil)
}
