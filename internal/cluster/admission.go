package cluster

import (
	"sync/atomic"
	"time"
)

// Shed causes. These are the wire-visible error codes of the 429 taxonomy;
// the service tier maps them onto its typed error body unchanged.
const (
	// CauseQueueFull sheds load beyond the bounded admission queue.
	CauseQueueFull = "queue_full"
	// CauseDeadlineBudget sheds a request whose own deadline cannot survive
	// the predicted queue wait: running it would burn a worker slot to
	// produce a deadline_exceeded error.
	CauseDeadlineBudget = "deadline_budget"
	// CauseDraining sheds everything while the daemon shuts down.
	CauseDraining = "draining"
)

// Shed is an admission refusal: the typed cause plus a Retry-After hint.
type Shed struct {
	Cause string
	// RetryAfter is the earliest retry that has a chance of being admitted
	// (rounded up to whole seconds for the HTTP header; never zero).
	RetryAfter time.Duration
}

// AdmissionStats is a point-in-time snapshot for the metrics surface.
type AdmissionStats struct {
	Capacity int
	Workers  int
	// Inflight counts admitted-and-unfinished requests (executing + queued).
	Inflight int64
	Admitted uint64
	// Shed counts per cause.
	ShedQueueFull      uint64
	ShedDeadlineBudget uint64
	ShedDraining       uint64
	// EstServiceSeconds is the EWMA of recent per-request service time that
	// wait prediction is based on.
	EstServiceSeconds float64
}

// Admission is the bounded admission queue in front of the worker pool.
// Capacity bounds how many admitted requests may be *waiting* (beyond the
// workers that can execute immediately); everything past that is shed with
// CauseQueueFull instead of queueing unbounded latency. A request carrying
// a deadline is additionally shed with CauseDeadlineBudget when the
// predicted queue wait — queued position times the EWMA of recent service
// times, divided by the worker count — already exceeds its remaining
// budget. Admission is non-blocking by construction: the decision is a few
// atomics, taken before any worker-pool wait.
type Admission struct {
	capacity int
	workers  int

	inflight atomic.Int64
	admitted atomic.Uint64
	shedQF   atomic.Uint64
	shedDB   atomic.Uint64
	shedDR   atomic.Uint64

	// ewmaNs is the exponentially weighted moving average of observed
	// service times (alpha = 1/8), in nanoseconds. Zero until the first
	// completion; wait prediction treats zero as "unknown, admit".
	ewmaNs atomic.Int64
}

// NewAdmission builds an admission queue of the given capacity in front of
// a pool of workers executing slots. capacity <= 0 defaults to 64; workers
// <= 0 defaults to 1.
func NewAdmission(capacity, workers int) *Admission {
	if capacity <= 0 {
		capacity = 64
	}
	if workers <= 0 {
		workers = 1
	}
	return &Admission{capacity: capacity, workers: workers}
}

// ceilSeconds rounds d up to whole seconds, never below 1s.
func ceilSeconds(d time.Duration) time.Duration {
	if d <= time.Second {
		return time.Second
	}
	return ((d + time.Second - 1) / time.Second) * time.Second
}

// predictWait estimates how long the request admitted into queued position
// n (1-based among the waiters) will wait for a worker slot.
func (a *Admission) predictWait(queued int64) time.Duration {
	if queued <= 0 {
		return 0
	}
	ewma := time.Duration(a.ewmaNs.Load())
	if ewma <= 0 {
		return 0
	}
	rounds := (queued + int64(a.workers) - 1) / int64(a.workers)
	return time.Duration(rounds) * ewma
}

// Admit decides one request. budget is the request's total deadline budget
// (<= 0 means no deadline — never shed for budget); draining reports that
// the daemon is shutting down. On admission it returns a release func the
// caller MUST invoke exactly once when the request finishes, passing the
// observed service time (how long a worker actually spent on it; pass 0 to
// leave the estimate untouched). On refusal it returns a non-nil *Shed and
// a nil release.
func (a *Admission) Admit(budget time.Duration, draining bool) (release func(served time.Duration), shed *Shed) {
	if draining {
		a.shedDR.Add(1)
		return nil, &Shed{Cause: CauseDraining, RetryAfter: time.Second}
	}
	inflight := a.inflight.Add(1)
	queued := inflight - int64(a.workers)
	if queued > int64(a.capacity) {
		a.inflight.Add(-1)
		a.shedQF.Add(1)
		// Hint: the queue drains one "round" of workers per EWMA tick.
		return nil, &Shed{Cause: CauseQueueFull, RetryAfter: ceilSeconds(a.predictWait(queued))}
	}
	if wait := a.predictWait(queued); budget > 0 && wait > budget {
		a.inflight.Add(-1)
		a.shedDB.Add(1)
		return nil, &Shed{Cause: CauseDeadlineBudget, RetryAfter: ceilSeconds(wait)}
	}
	a.admitted.Add(1)
	var done atomic.Bool
	return func(served time.Duration) {
		if !done.CompareAndSwap(false, true) {
			return
		}
		a.inflight.Add(-1)
		if served > 0 {
			a.observe(served)
		}
	}, nil
}

// observe folds one completed service time into the EWMA (alpha = 1/8).
// The CAS loop keeps concurrent updates lossless without a mutex.
func (a *Admission) observe(served time.Duration) {
	for {
		old := a.ewmaNs.Load()
		var next int64
		if old == 0 {
			next = int64(served)
		} else {
			next = old + (int64(served)-old)/8
			if next <= 0 {
				next = 1
			}
		}
		if a.ewmaNs.CompareAndSwap(old, next) {
			return
		}
	}
}

// SeedEstimate primes the service-time EWMA (tests and warm restarts).
func (a *Admission) SeedEstimate(d time.Duration) { a.ewmaNs.Store(int64(d)) }

// Stats snapshots the counters.
func (a *Admission) Stats() AdmissionStats {
	return AdmissionStats{
		Capacity:           a.capacity,
		Workers:            a.workers,
		Inflight:           a.inflight.Load(),
		Admitted:           a.admitted.Load(),
		ShedQueueFull:      a.shedQF.Load(),
		ShedDeadlineBudget: a.shedDB.Load(),
		ShedDraining:       a.shedDR.Load(),
		EstServiceSeconds:  time.Duration(a.ewmaNs.Load()).Seconds(),
	}
}
