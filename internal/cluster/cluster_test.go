package cluster

import (
	"fmt"
	"reflect"
	"sort"
	"testing"
)

func TestNewRouterValidation(t *testing.T) {
	if _, err := NewRouter("", nil); err == nil {
		t.Fatal("empty self must be rejected")
	}
	if _, err := NewRouter("http://a:1", []string{"http://b:1", ""}); err == nil {
		t.Fatal("empty peer URL must be rejected")
	}
	r, err := NewRouter("http://a:1", []string{"http://b:1", "http://b:1", "http://a:1"})
	if err != nil {
		t.Fatal(err)
	}
	if r.Size() != 2 {
		t.Fatalf("dedup failed: members %v", r.Peers())
	}
	if r.Self() != "http://a:1" {
		t.Fatalf("self = %q", r.Self())
	}
}

func TestRouterSingleNodeOwnsEverything(t *testing.T) {
	r, err := NewRouter("http://solo:1", nil)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 100; i++ {
		key := fmt.Sprintf("labelled|false|k%d|k%d", i, i+1)
		if !r.Local(key) {
			t.Fatalf("single-node router does not own %q", key)
		}
	}
}

// TestRouterAgreement pins the core cluster invariant: every node, whatever
// its own identity, computes the same owner for the same key.
func TestRouterAgreement(t *testing.T) {
	peers := []string{"http://n0:1", "http://n1:1", "http://n2:1"}
	routers := make([]*Router, len(peers))
	for i, self := range peers {
		var err error
		routers[i], err = NewRouter(self, peers)
		if err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 500; i++ {
		key := fmt.Sprintf("barbed|true|pair-%d|pair-%d", i, 7919*i)
		want := routers[0].Owner(key)
		for _, r := range routers[1:] {
			if got := r.Owner(key); got != want {
				t.Fatalf("key %q: %s says owner %s, %s says %s",
					key, routers[0].Self(), want, r.Self(), got)
			}
		}
		if routers[0].Local(key) != (want == routers[0].Self()) {
			t.Fatal("Local disagrees with Owner")
		}
	}
}

// TestRouterDistribution checks rendezvous hashing spreads ownership: over
// 3000 keys each of 3 peers owns a non-degenerate share.
func TestRouterDistribution(t *testing.T) {
	peers := []string{"http://n0:1", "http://n1:1", "http://n2:1"}
	r, err := NewRouter(peers[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	counts := map[string]int{}
	const n = 3000
	for i := 0; i < n; i++ {
		counts[r.Owner(fmt.Sprintf("labelled|false|term-%d|term-%d", i, i*i))]++
	}
	for _, p := range peers {
		if counts[p] < n/10 {
			t.Fatalf("peer %s owns only %d/%d keys: %v", p, counts[p], n, counts)
		}
	}
}

// TestRouterStability pins the rendezvous property: removing one member
// only reassigns the keys it owned — every other key keeps its owner.
func TestRouterStability(t *testing.T) {
	peers := []string{"http://n0:1", "http://n1:1", "http://n2:1", "http://n3:1"}
	full, err := NewRouter(peers[0], peers)
	if err != nil {
		t.Fatal(err)
	}
	smaller, err := NewRouter(peers[0], peers[:3]) // n3 removed
	if err != nil {
		t.Fatal(err)
	}
	moved := 0
	for i := 0; i < 1000; i++ {
		key := fmt.Sprintf("step|false|k%d|k%d", i, i+13)
		before := full.Owner(key)
		after := smaller.Owner(key)
		if before == peers[3] {
			moved++
			continue // its owner left; any reassignment is fine
		}
		if before != after {
			t.Fatalf("key %q moved %s -> %s though its owner stayed", key, before, after)
		}
	}
	if moved == 0 {
		t.Fatal("departed peer owned nothing out of 1000 keys; hashing is degenerate")
	}
}

func TestRouterRanked(t *testing.T) {
	peers := []string{"http://n0:1", "http://n1:1", "http://n2:1"}
	r, err := NewRouter(peers[1], peers)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		key := fmt.Sprintf("labelled|false|r%d|r%d", i, i+1)
		ranked := r.Ranked(key)
		if ranked[0] != r.Owner(key) {
			t.Fatalf("Ranked[0] = %s, Owner = %s", ranked[0], r.Owner(key))
		}
		perm := append([]string(nil), ranked...)
		sort.Strings(perm)
		if !reflect.DeepEqual(perm, r.Peers()) {
			t.Fatalf("Ranked is not a permutation of the membership: %v", ranked)
		}
	}
}
