package cluster

import (
	"math/rand"
	"sync"
	"testing"
	"time"
)

// TestAdmissionCauses table-tests the three shed causes and their
// Retry-After hints; everything here is deterministic — no goroutines.
func TestAdmissionCauses(t *testing.T) {
	t.Run("draining", func(t *testing.T) {
		a := NewAdmission(4, 1)
		rel, shed := a.Admit(0, true)
		if rel != nil || shed == nil || shed.Cause != CauseDraining {
			t.Fatalf("draining admit: released=%t shed=%+v", rel != nil, shed)
		}
		if shed.RetryAfter < time.Second {
			t.Fatalf("Retry-After = %s, must be >= 1s", shed.RetryAfter)
		}
	})

	t.Run("queue_full", func(t *testing.T) {
		a := NewAdmission(2, 1) // 1 executing + 2 queued fit; the 4th sheds
		var rels []func(time.Duration)
		for i := 0; i < 3; i++ {
			rel, shed := a.Admit(0, false)
			if shed != nil {
				t.Fatalf("admit %d shed: %+v", i, shed)
			}
			rels = append(rels, rel)
		}
		rel, shed := a.Admit(0, false)
		if rel != nil || shed == nil || shed.Cause != CauseQueueFull {
			t.Fatalf("over-capacity admit: released=%t shed=%+v", rel != nil, shed)
		}
		if shed.RetryAfter < time.Second {
			t.Fatalf("Retry-After = %s, must be >= 1s", shed.RetryAfter)
		}
		// Releasing one makes room again.
		rels[0](10 * time.Millisecond)
		if rel, shed = a.Admit(0, false); shed != nil {
			t.Fatalf("post-release admit shed: %+v", shed)
		}
		rel(0)
		rels[1](0)
		rels[2](0)
		st := a.Stats()
		if st.Inflight != 0 || st.ShedQueueFull != 1 || st.Admitted != 4 {
			t.Fatalf("stats: %+v", st)
		}
	})

	t.Run("deadline_budget", func(t *testing.T) {
		a := NewAdmission(8, 1)
		a.SeedEstimate(2 * time.Second)
		// Occupy the single worker so the next request is queued.
		relBusy, shed := a.Admit(0, false)
		if shed != nil {
			t.Fatalf("busy admit shed: %+v", shed)
		}
		defer relBusy(0)
		// Queued position 1, predicted wait 2s, budget 50ms: shed.
		rel, shed := a.Admit(50*time.Millisecond, false)
		if rel != nil || shed == nil || shed.Cause != CauseDeadlineBudget {
			t.Fatalf("short-budget admit: released=%t shed=%+v", rel != nil, shed)
		}
		if shed.RetryAfter < 2*time.Second {
			t.Fatalf("Retry-After = %s, predicted wait was 2s", shed.RetryAfter)
		}
		// The same position with a big budget is admitted.
		rel, shed = a.Admit(time.Minute, false)
		if shed != nil {
			t.Fatalf("long-budget admit shed: %+v", shed)
		}
		rel(0)
		// No deadline means never shedding for budget.
		rel, shed = a.Admit(0, false)
		if shed != nil {
			t.Fatalf("no-deadline admit shed: %+v", shed)
		}
		rel(0)
		if st := a.Stats(); st.ShedDeadlineBudget != 1 {
			t.Fatalf("stats: %+v", st)
		}
	})
}

// TestAdmissionReleaseIdempotent pins that double-release cannot corrupt
// the inflight gauge.
func TestAdmissionReleaseIdempotent(t *testing.T) {
	a := NewAdmission(4, 2)
	rel, shed := a.Admit(0, false)
	if shed != nil {
		t.Fatal(shed)
	}
	rel(time.Millisecond)
	rel(time.Millisecond)
	rel(0)
	if st := a.Stats(); st.Inflight != 0 {
		t.Fatalf("inflight = %d after triple release", st.Inflight)
	}
}

// TestAdmissionEWMA checks the estimate converges onto a steady service
// time and that unknown (zero) estimates never shed for budget.
func TestAdmissionEWMA(t *testing.T) {
	a := NewAdmission(4, 1)
	if w := a.predictWait(3); w != 0 {
		t.Fatalf("predicted wait with no estimate = %s, want 0", w)
	}
	for i := 0; i < 64; i++ {
		rel, shed := a.Admit(0, false)
		if shed != nil {
			t.Fatal(shed)
		}
		rel(100 * time.Millisecond)
	}
	got := a.Stats().EstServiceSeconds
	if got < 0.05 || got > 0.2 {
		t.Fatalf("EWMA after steady 100ms services = %gs", got)
	}
	// Two queued rounds at 1 worker ≈ 2 × EWMA.
	if w := a.predictWait(2); w < 100*time.Millisecond || w > 400*time.Millisecond {
		t.Fatalf("predictWait(2) = %s", w)
	}
}

// TestAdmissionRace hammers one admission queue with 64 goroutines under
// the race detector: admit, sometimes hold, release with a service time.
// Invariants: the inflight gauge returns to zero, every attempt is either
// admitted or counted against exactly one shed cause, and inflight never
// exceeds workers+capacity.
func TestAdmissionRace(t *testing.T) {
	const (
		goroutines = 64
		iters      = 200
		workers    = 4
		capacity   = 8
	)
	a := NewAdmission(capacity, workers)
	var wg sync.WaitGroup
	var attempts [goroutines]uint64
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < iters; i++ {
				attempts[g]++
				budget := time.Duration(0)
				if rng.Intn(4) == 0 {
					budget = time.Duration(rng.Intn(10)) * time.Millisecond
				}
				rel, shed := a.Admit(budget, false)
				if shed != nil {
					switch shed.Cause {
					case CauseQueueFull, CauseDeadlineBudget:
					default:
						t.Errorf("unexpected shed cause %q", shed.Cause)
					}
					continue
				}
				if inflight := a.Stats().Inflight; inflight > workers+capacity {
					t.Errorf("inflight %d exceeds workers+capacity %d", inflight, workers+capacity)
				}
				rel(time.Duration(rng.Intn(200)) * time.Microsecond)
			}
		}(g)
	}
	wg.Wait()
	st := a.Stats()
	if st.Inflight != 0 {
		t.Fatalf("inflight = %d after all releases", st.Inflight)
	}
	var total uint64
	for _, n := range attempts {
		total += n
	}
	if st.Admitted+st.ShedQueueFull+st.ShedDeadlineBudget+st.ShedDraining != total {
		t.Fatalf("accounting leak: admitted %d + shed (%d,%d,%d) != attempts %d",
			st.Admitted, st.ShedQueueFull, st.ShedDeadlineBudget, st.ShedDraining, total)
	}
}
