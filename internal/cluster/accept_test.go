package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"testing"

	"bpi/internal/equiv"
	"bpi/internal/parser"
	"bpi/internal/syntax"
)

// decide produces an honestly certified verdict plus the canonical keys of
// the pair, i.e. exactly what a truthful peer would hand back.
func decide(t *testing.T, psrc, qsrc string, weak bool) (v *EquivVerdict, kp, kq string) {
	t.Helper()
	p, err := parser.Parse(psrc)
	if err != nil {
		t.Fatal(err)
	}
	q, err := parser.Parse(qsrc)
	if err != nil {
		t.Fatal(err)
	}
	ch := equiv.NewChecker(nil)
	ch.Certify = true
	r, err := ch.LabelledCtx(context.Background(), p, q, weak)
	if err != nil {
		t.Fatal(err)
	}
	if r.Cert == nil {
		t.Fatal("certifying checker returned no certificate")
	}
	raw, err := json.Marshal(r.Cert)
	if err != nil {
		t.Fatal(err)
	}
	return &EquivVerdict{Related: r.Related, Pairs: r.Pairs, Reason: r.Reason, Certificate: raw},
		syntax.Key(syntax.Simplify(p)), syntax.Key(syntax.Simplify(q))
}

func TestVerifyAcceptHonestVerdicts(t *testing.T) {
	for _, tc := range []struct {
		p, q string
		weak bool
	}{
		{"a! | b!", "a!.b! + b!.a!", false},
		{"a?(x).x!", "a?(y).y!", false},
		{"a!", "b!", false}, // negative verdicts must be acceptable too
		{"tau.a!", "a!", true},
	} {
		v, kp, kq := decide(t, tc.p, tc.q, tc.weak)
		crt, err := VerifyAccept(nil, "labelled", tc.weak, kp, kq, v)
		if err != nil {
			t.Fatalf("%s ~ %s: honest verdict rejected: %v", tc.p, tc.q, err)
		}
		if crt == nil || crt.Related != v.Related {
			t.Fatalf("%s ~ %s: accepted certificate drifted: %+v", tc.p, tc.q, crt)
		}
		// Swapped key orientation is the same unordered pair.
		if _, err := VerifyAccept(nil, "labelled", tc.weak, kq, kp, v); err != nil {
			t.Fatalf("%s ~ %s: swapped orientation rejected: %v", tc.p, tc.q, err)
		}
	}
}

// TestVerifyAcceptFailClosed table-tests every rejection path: each kind of
// lie or damage must be refused, never accepted with a shrug.
func TestVerifyAcceptFailClosed(t *testing.T) {
	v, kp, kq := decide(t, "a! | b!", "a!.b! + b!.a!", false)

	t.Run("nil verdict", func(t *testing.T) {
		if _, err := VerifyAccept(nil, "labelled", false, kp, kq, nil); err == nil {
			t.Fatal("accepted a nil verdict")
		}
	})
	t.Run("no certificate", func(t *testing.T) {
		bare := *v
		bare.Certificate = nil
		if _, err := VerifyAccept(nil, "labelled", false, kp, kq, &bare); err == nil {
			t.Fatal("accepted an uncertified verdict")
		}
	})
	t.Run("wrong relation claimed", func(t *testing.T) {
		if _, err := VerifyAccept(nil, "barbed", false, kp, kq, v); err == nil {
			t.Fatal("accepted a labelled certificate for a barbed query")
		}
	})
	t.Run("wrong mode claimed", func(t *testing.T) {
		if _, err := VerifyAccept(nil, "labelled", true, kp, kq, v); err == nil {
			t.Fatal("accepted a strong certificate for a weak query")
		}
	})
	t.Run("flipped verdict", func(t *testing.T) {
		flipped := *v
		flipped.Related = !flipped.Related
		if _, err := VerifyAccept(nil, "labelled", false, kp, kq, &flipped); err == nil {
			t.Fatal("accepted a verdict its certificate contradicts")
		}
	})
	t.Run("different pair", func(t *testing.T) {
		_, okp, okq := decide(t, "c!", "c!", false)
		if _, err := VerifyAccept(nil, "labelled", false, okp, okq, v); err == nil {
			t.Fatal("accepted a certificate about a different pair")
		}
	})
	t.Run("truncated bytes", func(t *testing.T) {
		torn := *v
		torn.Certificate = v.Certificate[:len(v.Certificate)/2]
		if _, err := VerifyAccept(nil, "labelled", false, kp, kq, &torn); err == nil {
			t.Fatal("accepted a truncated certificate")
		}
	})
	t.Run("forged positive verdict", func(t *testing.T) {
		// A negative pair whose verdict AND certificate both claim related:
		// internally consistent lies must still die at the verifier.
		neg, nkp, nkq := decide(t, "a!", "b!", false)
		forged := *neg
		forged.Related = true
		forged.Certificate = bytes.Replace(neg.Certificate,
			[]byte(`"related":false`), []byte(`"related":true`), 1)
		if !bytes.Contains(forged.Certificate, []byte(`"related":true`)) {
			// The field may be omitted when false; inject it instead.
			forged.Certificate = bytes.Replace(neg.Certificate,
				[]byte(`"relation":"labelled"`), []byte(`"relation":"labelled","related":true`), 1)
		}
		if _, err := VerifyAccept(nil, "labelled", false, nkp, nkq, &forged); err == nil {
			t.Fatal("accepted a forged positive verdict")
		}
	})
}
