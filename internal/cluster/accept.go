package cluster

import (
	"fmt"

	"bpi/internal/cert"
	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// VerifyAccept is the fail-closed acceptance rule for verdicts that arrive
// from outside the local process (a peer dispatch, a ledger import). It
// accepts v only when ALL of the following replay cleanly, sharing no code
// trust with whoever produced it:
//
//  1. the verdict carries a certificate at all;
//  2. the certificate claims exactly the queried relation, mode and verdict
//     (a proof of something else, however valid, proves nothing here);
//  3. the certificate's own terms re-derive the queried canonical pair —
//     so a valid proof about a different pair cannot be replayed onto this
//     cache key;
//  4. the independent verifier (internal/cert) accepts the evidence.
//
// On success the parsed certificate is returned for caching alongside the
// verdict. sys supplies process definitions for certificates over defined
// constants (nil is fine for closed terms).
func VerifyAccept(sys *semantics.System, rel string, weak bool, kp, kq string, v *EquivVerdict) (*cert.Certificate, error) {
	if v == nil {
		return nil, fmt.Errorf("cluster: no verdict to accept")
	}
	if len(v.Certificate) == 0 {
		return nil, fmt.Errorf("cluster: remote verdict carries no certificate")
	}
	crt, err := cert.Unmarshal(v.Certificate)
	if err != nil {
		return nil, fmt.Errorf("cluster: remote certificate unparseable: %w", err)
	}
	if crt.Relation != rel || crt.Weak != weak {
		return nil, fmt.Errorf("cluster: certificate proves %s weak=%t, query was %s weak=%t",
			crt.Relation, crt.Weak, rel, weak)
	}
	if crt.Related != v.Related {
		return nil, fmt.Errorf("cluster: verdict related=%t but certificate proves related=%t",
			v.Related, crt.Related)
	}
	ckp, err := termKey(crt.P)
	if err != nil {
		return nil, err
	}
	ckq, err := termKey(crt.Q)
	if err != nil {
		return nil, err
	}
	// All the paper's relations are symmetric; compare as unordered pairs,
	// matching how cache and ledger keys order the sides.
	if !samePair(kp, kq, ckp, ckq) {
		return nil, fmt.Errorf("cluster: certificate is about a different pair than the query")
	}
	verifier := &cert.Verifier{Sys: sys}
	if err := verifier.Verify(crt); err != nil {
		return nil, fmt.Errorf("cluster: certificate rejected by the independent verifier: %w", err)
	}
	return crt, nil
}

// termKey parses one canonically printed certificate term and returns its
// alpha-class key.
func termKey(src string) (string, error) {
	p, err := parser.Parse(src)
	if err != nil {
		return "", fmt.Errorf("cluster: certificate names unparseable term %q: %w", src, err)
	}
	return syntax.Key(syntax.Simplify(p)), nil
}

// samePair compares two unordered key pairs.
func samePair(a1, a2, b1, b2 string) bool {
	return (a1 == b1 && a2 == b2) || (a1 == b2 && a2 == b1)
}
