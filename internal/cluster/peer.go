package cluster

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// ForwardedHeader marks a request that has already been routed once. A node
// receiving it always decides locally: with a static membership two nodes
// can only disagree about an owner while their peer lists differ, and one
// hop of forwarding caps that disagreement instead of looping.
const ForwardedHeader = "X-Bpi-Cluster-Forwarded"

// EquivQuery is the slice of the daemon's /v1/equiv request contract that
// remote dispatch uses. It is deliberately a mirror, not an import: the
// only thing two cluster nodes must share is the public JSON wire format.
type EquivQuery struct {
	P          string `json:"p"`
	Q          string `json:"q"`
	Rel        string `json:"rel"`
	Weak       bool   `json:"weak,omitempty"`
	MaxPairs   int    `json:"max_pairs,omitempty"`
	MaxClosure int    `json:"max_closure,omitempty"`
	MaxSubs    int    `json:"max_subs,omitempty"`
	TimeoutMs  int    `json:"timeout_ms,omitempty"`
	Cert       bool   `json:"cert,omitempty"`
}

// EquivVerdict mirrors the daemon's /v1/equiv response. Certificate is kept
// raw: acceptance parses it exactly once, inside VerifyAccept.
type EquivVerdict struct {
	Related     bool            `json:"related"`
	Pairs       int             `json:"pairs"`
	Reason      string          `json:"reason,omitempty"`
	Cached      bool            `json:"cached"`
	ElapsedMs   float64         `json:"elapsed_ms"`
	Certificate json.RawMessage `json:"certificate,omitempty"`
}

// PeerError is a peer's typed refusal (its HTTP error envelope).
type PeerError struct {
	Status  int
	Code    string
	Message string
}

func (e *PeerError) Error() string {
	return fmt.Sprintf("peer: HTTP %d: %s: %s", e.Status, e.Code, e.Message)
}

// PeerClient dispatches equivalence queries to peer daemons over their
// public HTTP API. The zero value is not usable; build with NewPeerClient.
type PeerClient struct {
	hc *http.Client
}

// NewPeerClient returns a client whose per-dispatch wall-clock is bounded
// by the context each call carries (the transport itself sets no timeout,
// so one slow peer cannot define policy for all dispatches).
func NewPeerClient() *PeerClient {
	return &PeerClient{hc: &http.Client{}}
}

// maxPeerBody bounds a peer response (certificates dominate; 32 MiB is far
// beyond any certificate the engines emit under default budgets).
const maxPeerBody = 32 << 20

// Equiv posts one equivalence query to the peer at base, marked forwarded
// so the peer decides locally. The Cert field is forced on: an uncertified
// remote verdict is unacceptable by construction.
func (pc *PeerClient) Equiv(ctx context.Context, base string, q EquivQuery) (*EquivVerdict, error) {
	q.Cert = true
	body, err := json.Marshal(q)
	if err != nil {
		return nil, err
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodPost,
		strings.TrimRight(base, "/")+"/v1/equiv", bytes.NewReader(body))
	if err != nil {
		return nil, err
	}
	req.Header.Set("Content-Type", "application/json")
	req.Header.Set(ForwardedHeader, "1")
	resp, err := pc.hc.Do(req)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, maxPeerBody))
	if err != nil {
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		var env struct {
			Error struct {
				Code    string `json:"code"`
				Message string `json:"message"`
			} `json:"error"`
		}
		if json.Unmarshal(data, &env) == nil && env.Error.Code != "" {
			return nil, &PeerError{Status: resp.StatusCode, Code: env.Error.Code, Message: env.Error.Message}
		}
		return nil, &PeerError{Status: resp.StatusCode, Code: "unparseable",
			Message: strings.TrimSpace(string(data))}
	}
	var out EquivVerdict
	if err := json.Unmarshal(data, &out); err != nil {
		return nil, fmt.Errorf("peer: unparseable verdict: %w", err)
	}
	return &out, nil
}

// Health probes a peer's /healthz.
func (pc *PeerClient) Health(ctx context.Context, base string) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet,
		strings.TrimRight(base, "/")+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := pc.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<12))
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("peer %s: unhealthy: HTTP %d", base, resp.StatusCode)
	}
	return nil
}
