// Package cluster is the multi-node tier of bpid: deterministic routing of
// equivalence queries to peer daemons, bounded admission control for the
// service endpoints, and the fail-closed acceptance rule for verdicts that
// arrive from outside the local process.
//
// The design splits trust from placement:
//
//   - Placement (router.go) is rendezvous (highest-random-weight) hashing of
//     the canonical pair key over a static peer list. Every node computes
//     the same owner for the same pair with no coordination, peers can be
//     probed in a deterministic preference order, and removing one peer
//     only reassigns the pairs it owned.
//   - Trust (accept.go) never travels with placement: a node accepts a
//     remote (or ledger-imported) verdict only after replaying its
//     certificate through the independent verifier (internal/cert) and
//     re-deriving the canonical pair key from the certificate's own terms.
//     A peer that lies — about the verdict, the pair, or the proof — is
//     indistinguishable from a peer that is down: the caller falls back to
//     deciding locally. No shared code trust, exactly the property that
//     makes broadcast-via-multicast style distribution checkable hop by
//     hop.
//   - Backpressure (admission.go) is a bounded admission queue in front of
//     the worker pool: load beyond the queue is shed immediately with a
//     typed cause (queue_full, deadline_budget, draining) and a Retry-After
//     hint, instead of accumulating latency for everyone.
//
// The package deliberately does not import internal/service: the service
// tier composes these pieces, and the HTTP payload it exchanges with peers
// is the daemon's public JSON contract (mirrored in peer.go), so a peer
// needs nothing but the wire format in common with us.
package cluster

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"
	"sort"
)

// Router deterministically assigns canonical pair keys to peers by
// rendezvous (highest-random-weight) hashing: the owner of a key is the
// peer maximising H(peer, key). All nodes with the same peer list agree on
// every owner without coordination.
type Router struct {
	self  string
	peers []string // deduplicated, sorted; includes self
}

// NewRouter builds a router for this node. self must appear in peers (it is
// added when absent); an empty peer list yields a single-node router that
// owns everything.
func NewRouter(self string, peers []string) (*Router, error) {
	if self == "" {
		return nil, fmt.Errorf("cluster: router needs a non-empty self identity")
	}
	seen := map[string]bool{self: true}
	all := []string{self}
	for _, p := range peers {
		if p == "" {
			return nil, fmt.Errorf("cluster: empty peer URL in peer list")
		}
		if !seen[p] {
			seen[p] = true
			all = append(all, p)
		}
	}
	sort.Strings(all)
	return &Router{self: self, peers: all}, nil
}

// Self returns this node's identity as given to NewRouter.
func (r *Router) Self() string { return r.self }

// Peers returns the full membership (self included), sorted.
func (r *Router) Peers() []string { return append([]string(nil), r.peers...) }

// Size returns the number of members (self included).
func (r *Router) Size() int { return len(r.peers) }

// score is the rendezvous weight of (peer, key): the first 8 bytes of
// SHA-256(peer || 0x00 || key) read big-endian. SHA-256 keeps the weights
// uniform enough that ownership splits evenly and is stable across
// processes and architectures.
func score(peer, key string) uint64 {
	h := sha256.New()
	h.Write([]byte(peer))
	h.Write([]byte{0})
	h.Write([]byte(key))
	var sum [sha256.Size]byte
	return binary.BigEndian.Uint64(h.Sum(sum[:0])[:8])
}

// Owner returns the peer owning key: the member with the highest rendezvous
// score (ties broken by the lexicographically larger peer string, which
// cannot collide since peers are deduplicated).
func (r *Router) Owner(key string) string {
	best, bestScore := r.peers[0], score(r.peers[0], key)
	for _, p := range r.peers[1:] {
		if s := score(p, key); s > bestScore || (s == bestScore && p > best) {
			best, bestScore = p, s
		}
	}
	return best
}

// Local reports whether this node owns key.
func (r *Router) Local(key string) bool { return r.Owner(key) == r.self }

// Ranked returns the members ordered by descending rendezvous score for
// key: Ranked(key)[0] == Owner(key), and the rest is the deterministic
// fail-over preference order.
func (r *Router) Ranked(key string) []string {
	type ps struct {
		peer string
		s    uint64
	}
	all := make([]ps, len(r.peers))
	for i, p := range r.peers {
		all[i] = ps{p, score(p, key)}
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].s != all[j].s {
			return all[i].s > all[j].s
		}
		return all[i].peer > all[j].peer
	})
	out := make([]string, len(all))
	for i, p := range all {
		out[i] = p.peer
	}
	return out
}
