package cluster

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
)

func TestPeerClientEquiv(t *testing.T) {
	var seen struct {
		forwarded   string
		contentType string
		query       EquivQuery
	}
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.Method != http.MethodPost || r.URL.Path != "/v1/equiv" {
			t.Errorf("unexpected request %s %s", r.Method, r.URL.Path)
		}
		seen.forwarded = r.Header.Get(ForwardedHeader)
		seen.contentType = r.Header.Get("Content-Type")
		if err := json.NewDecoder(r.Body).Decode(&seen.query); err != nil {
			t.Errorf("decode: %v", err)
		}
		w.Header().Set("Content-Type", "application/json")
		_, _ = w.Write([]byte(`{"related":true,"pairs":3,"elapsed_ms":1.5,"certificate":{"version":1}}`))
	}))
	defer srv.Close()

	pc := NewPeerClient()
	// Trailing slash on base must not produce a double-slash URL.
	v, err := pc.Equiv(context.Background(), srv.URL+"/", EquivQuery{P: "a!", Q: "a!", Rel: "labelled"})
	if err != nil {
		t.Fatal(err)
	}
	if !v.Related || v.Pairs != 3 || len(v.Certificate) == 0 {
		t.Fatalf("verdict: %+v", v)
	}
	if seen.forwarded != "1" {
		t.Fatalf("forwarded header = %q, want 1", seen.forwarded)
	}
	if seen.contentType != "application/json" {
		t.Fatalf("content type = %q", seen.contentType)
	}
	if !seen.query.Cert {
		t.Fatal("dispatch did not force cert:true")
	}
	if seen.query.P != "a!" || seen.query.Rel != "labelled" {
		t.Fatalf("query body: %+v", seen.query)
	}
}

func TestPeerClientErrorEnvelope(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "application/json")
		w.WriteHeader(http.StatusTooManyRequests)
		_, _ = w.Write([]byte(`{"error":{"code":"queue_full","message":"admission queue full"}}`))
	}))
	defer srv.Close()

	_, err := NewPeerClient().Equiv(context.Background(), srv.URL, EquivQuery{P: "a!", Q: "a!", Rel: "labelled"})
	pe, ok := err.(*PeerError)
	if !ok {
		t.Fatalf("error type %T: %v", err, err)
	}
	if pe.Status != http.StatusTooManyRequests || pe.Code != "queue_full" {
		t.Fatalf("peer error: %+v", pe)
	}
	if !strings.Contains(pe.Error(), "queue_full") {
		t.Fatalf("error string: %s", pe.Error())
	}
}

func TestPeerClientMalformedResponses(t *testing.T) {
	t.Run("non-json error body", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			http.Error(w, "boom", http.StatusInternalServerError)
		}))
		defer srv.Close()
		_, err := NewPeerClient().Equiv(context.Background(), srv.URL, EquivQuery{P: "a!", Q: "a!", Rel: "labelled"})
		pe, ok := err.(*PeerError)
		if !ok || pe.Code != "unparseable" || pe.Message != "boom" {
			t.Fatalf("error: %T %v", err, err)
		}
	})
	t.Run("non-json success body", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
			_, _ = w.Write([]byte("not json"))
		}))
		defer srv.Close()
		if _, err := NewPeerClient().Equiv(context.Background(), srv.URL, EquivQuery{P: "a!", Q: "a!", Rel: "labelled"}); err == nil {
			t.Fatal("unparseable verdict accepted")
		}
	})
	t.Run("connection refused", func(t *testing.T) {
		srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {}))
		srv.Close() // port now refuses
		if _, err := NewPeerClient().Equiv(context.Background(), srv.URL, EquivQuery{P: "a!", Q: "a!", Rel: "labelled"}); err == nil {
			t.Fatal("dial to closed peer succeeded")
		}
	})
}

func TestPeerClientHealth(t *testing.T) {
	srv := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if r.URL.Path != "/healthz" {
			w.WriteHeader(http.StatusNotFound)
			return
		}
		_, _ = w.Write([]byte("ok"))
	}))
	defer srv.Close()
	pc := NewPeerClient()
	if err := pc.Health(context.Background(), srv.URL); err != nil {
		t.Fatal(err)
	}
	if err := pc.Health(context.Background(), srv.URL+"/missing"); err == nil {
		t.Fatal("health against wrong path succeeded")
	}
}
