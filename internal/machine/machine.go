// Package machine executes bπ-calculus systems: it drives a closed process
// through its autonomous transitions (broadcast outputs and τ steps) under a
// pluggable scheduler, recording the visible broadcasts as a trace.
//
// This is the "run it" counterpart to the analysis stack: the cycle
// detector, the transaction system and the PVM encodings of the paper's
// Section 2.2 all execute on this machine. A Monte-Carlo pool (RunMany)
// executes many randomly-scheduled runs concurrently on a worker pool,
// which is how the reproduction estimates reachability probabilities
// ("does the detector always fire?") on one machine.
package machine

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/obs"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// ErrDeadline reports that a run was abandoned because its context was
// canceled or its deadline expired — distinct from hitting the MaxSteps
// budget, which ends a run normally (Result.Steps == MaxSteps, no error).
// It unwraps to the context error, so errors.Is(err,
// context.DeadlineExceeded) identifies timeouts.
type ErrDeadline struct{ Cause error }

func (e ErrDeadline) Error() string { return "machine: run canceled: " + e.Cause.Error() }

// Unwrap exposes the context error for errors.Is/As.
func (e ErrDeadline) Unwrap() error { return e.Cause }

// Scheduler selects which of n enabled autonomous transitions fires at a
// given step.
type Scheduler interface {
	Pick(n, step int) int
}

// RandomScheduler picks uniformly with a seeded generator.
type RandomScheduler struct{ rng *rand.Rand }

// NewRandomScheduler returns a seeded random scheduler.
func NewRandomScheduler(seed int64) *RandomScheduler {
	return &RandomScheduler{rand.New(rand.NewSource(seed))}
}

// Pick implements Scheduler.
func (s *RandomScheduler) Pick(n, _ int) int { return s.rng.Intn(n) }

// FirstScheduler always picks the first enabled transition (deterministic,
// depth-first flavour).
type FirstScheduler struct{}

// Pick implements Scheduler.
func (FirstScheduler) Pick(int, int) int { return 0 }

// RoundRobinScheduler cycles through the enabled transitions by step index.
type RoundRobinScheduler struct{}

// Pick implements Scheduler.
func (RoundRobinScheduler) Pick(n, step int) int { return step % n }

// Event is one fired transition.
type Event struct {
	// Step is the 0-based index of the transition in the run.
	Step int
	// Act is the fired label (an output or τ).
	Act actions.Act
}

// String renders "3: a!(b)".
func (e Event) String() string { return fmt.Sprintf("%d: %s", e.Step, e.Act) }

// Options configures a run.
type Options struct {
	// MaxSteps bounds the run length (default 1000).
	MaxSteps int
	// Scheduler resolves nondeterminism (default FirstScheduler).
	Scheduler Scheduler
	// StopOnBarb, when non-empty, stops the run as soon as an output on one
	// of these channels fires.
	StopOnBarb []names.Name
	// KeepTrace records every event (default: only outputs on StopOnBarb
	// and the step count are reported).
	KeepTrace bool
	// Obs, when non-nil, receives a machine.run span and the counters
	// machine.steps and machine.broadcasts.
	Obs *obs.Tracer
}

func (o Options) maxSteps() int {
	if o.MaxSteps <= 0 {
		return 1000
	}
	return o.MaxSteps
}

func (o Options) scheduler() Scheduler {
	if o.Scheduler == nil {
		return FirstScheduler{}
	}
	return o.Scheduler
}

// Result reports a run.
type Result struct {
	// Steps is the number of transitions fired.
	Steps int
	// Quiescent reports that the run ended because no autonomous transition
	// was enabled.
	Quiescent bool
	// Stopped reports that a StopOnBarb channel fired.
	Stopped bool
	// StopEvent is the event that triggered the stop (valid when Stopped).
	StopEvent Event
	// Trace holds all events when Options.KeepTrace is set.
	Trace []Event
	// Final is the final process state.
	Final syntax.Proc
}

// Run executes p under the options until quiescence, the step bound, or a
// stop barb.
func Run(sys *semantics.System, p syntax.Proc, opt Options) (Result, error) {
	return RunCtx(context.Background(), sys, p, opt)
}

// RunCtx is Run honouring ctx: the scheduler loop checks for cancellation
// before every step, so runaway executions (long encodings, adversarial
// schedules) are abandoned with a typed ErrDeadline instead of spinning to
// the step budget.
func RunCtx(ctx context.Context, sys *semantics.System, p syntax.Proc, opt Options) (Result, error) {
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	span := opt.Obs.Span("machine.run")
	defer span.End()
	cSteps := opt.Obs.Counter("machine.steps")
	cBroadcasts := opt.Obs.Counter("machine.broadcasts")
	stop := names.NewSet(opt.StopOnBarb...)
	sched := opt.scheduler()
	res := Result{Final: p}
	cur := p
	for res.Steps < opt.maxSteps() {
		if err := ctx.Err(); err != nil {
			return res, ErrDeadline{err}
		}
		ts, err := sys.Steps(cur)
		if err != nil {
			return res, err
		}
		var auto []semantics.Trans
		for _, t := range ts {
			if t.Act.IsStep() {
				auto = append(auto, t)
			}
		}
		if len(auto) == 0 {
			res.Quiescent = true
			break
		}
		pick := sched.Pick(len(auto), res.Steps)
		if pick < 0 || pick >= len(auto) {
			return res, fmt.Errorf("machine: scheduler picked %d of %d", pick, len(auto))
		}
		chosen := auto[pick]
		ev := Event{Step: res.Steps, Act: chosen.Act}
		if opt.KeepTrace {
			res.Trace = append(res.Trace, ev)
		}
		cur = syntax.Simplify(chosen.Target)
		res.Steps++
		cSteps.Add(1)
		if chosen.Act.IsOutput() {
			cBroadcasts.Add(1)
		}
		res.Final = cur
		if chosen.Act.IsOutput() && stop.Contains(chosen.Act.Subj) {
			res.Stopped = true
			res.StopEvent = ev
			return res, nil
		}
	}
	res.Final = cur
	return res, nil
}

// CanReachBarb explores the autonomous transition graph exhaustively
// (breadth-first, bounded by maxStates) and reports whether any reachable
// state emits on the watch channel. Unlike Run, this is scheduler-
// independent: it answers "is detection possible at all?".
func CanReachBarb(sys *semantics.System, p syntax.Proc, watch names.Name, maxStates int) (bool, error) {
	return CanReachBarbCtx(context.Background(), sys, p, watch, maxStates)
}

// CanReachBarbCtx is CanReachBarb honouring ctx (checked once per explored
// state).
func CanReachBarbCtx(ctx context.Context, sys *semantics.System, p syntax.Proc, watch names.Name, maxStates int) (bool, error) {
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if maxStates <= 0 {
		maxStates = 8192
	}
	seen := map[string]bool{}
	queue := []syntax.Proc{p}
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return false, ErrDeadline{err}
		}
		cur := queue[0]
		queue = queue[1:]
		k := syntax.Key(syntax.Simplify(cur))
		if seen[k] {
			continue
		}
		if len(seen) >= maxStates {
			return false, fmt.Errorf("machine: state budget %d exhausted", maxStates)
		}
		seen[k] = true
		ts, err := sys.Steps(cur)
		if err != nil {
			return false, err
		}
		for _, t := range ts {
			if t.Act.IsOutput() && t.Act.Subj == watch {
				return true, nil
			}
			if t.Act.IsStep() {
				queue = append(queue, t.Target)
			}
		}
	}
	return false, nil
}

// CanReachBarbAvoiding reports whether some autonomous execution reaches a
// state offering an output on watch without ever passing through a state
// that offers an output on an avoid channel (a *poisoned* state — merely
// declining to fire the poison output does not launder the path). Used for
// guess-and-verify encodings (e.g. the counter-machine simulation), where a
// dishonest guess leaves a pending poison output: validity means "the goal
// is reachable on an honest path".
func CanReachBarbAvoiding(sys *semantics.System, p syntax.Proc, watch names.Name,
	avoid names.Set, maxStates int) (bool, error) {
	return CanReachBarbAvoidingCtx(context.Background(), sys, p, watch, avoid, maxStates)
}

// CanReachBarbAvoidingCtx is CanReachBarbAvoiding honouring ctx (checked
// once per explored state), so large guess-and-verify encodings (e.g. the
// counter-machine simulations) are cancellable.
func CanReachBarbAvoidingCtx(ctx context.Context, sys *semantics.System, p syntax.Proc, watch names.Name,
	avoid names.Set, maxStates int) (bool, error) {
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	if ctx == nil {
		ctx = context.Background()
	}
	if maxStates <= 0 {
		maxStates = 8192
	}
	seen := map[string]bool{}
	queue := []syntax.Proc{p}
	for len(queue) > 0 {
		if err := ctx.Err(); err != nil {
			return false, ErrDeadline{err}
		}
		cur := queue[0]
		queue = queue[1:]
		k := syntax.Key(syntax.Simplify(cur))
		if seen[k] {
			continue
		}
		if len(seen) >= maxStates {
			return false, fmt.Errorf("machine: state budget %d exhausted", maxStates)
		}
		seen[k] = true
		ts, err := sys.Steps(cur)
		if err != nil {
			return false, err
		}
		poisoned := false
		for _, t := range ts {
			if t.Act.IsOutput() && avoid.Contains(t.Act.Subj) {
				poisoned = true
				break
			}
		}
		if poisoned {
			continue // the whole state is off-limits
		}
		for _, t := range ts {
			if !t.Act.IsStep() {
				continue
			}
			if t.Act.IsOutput() && t.Act.Subj == watch {
				return true, nil
			}
			queue = append(queue, t.Target)
		}
	}
	return false, nil
}

// AlwaysReachesBarb checks the *inevitability* of a barb: every maximal
// autonomous execution eventually fires an output on watch. A run can avoid
// the barb exactly when the subgraph of non-watch autonomous edges contains,
// reachably from p, either a dead end with no watch edge (a quiescent state
// that never offered the barb) or a cycle (an infinite execution postponing
// it forever). Both are detected by an explicit DFS over that subgraph; the
// counterexample state is returned on failure.
func AlwaysReachesBarb(sys *semantics.System, p syntax.Proc, watch names.Name, maxStates int) (bool, syntax.Proc, error) {
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	if maxStates <= 0 {
		maxStates = 8192
	}
	type node struct {
		proc     syntax.Proc
		avoid    []string // keys of non-watch successors
		hasWatch bool
	}
	nodes := map[string]*node{}
	var build func(q syntax.Proc) (string, error)
	build = func(q syntax.Proc) (string, error) {
		q = syntax.Simplify(q)
		k := syntax.Key(q)
		if _, ok := nodes[k]; ok {
			return k, nil
		}
		if len(nodes) >= maxStates {
			return "", fmt.Errorf("machine: state budget %d exhausted", maxStates)
		}
		n := &node{proc: q}
		nodes[k] = n
		ts, err := sys.Steps(q)
		if err != nil {
			return "", err
		}
		for _, t := range ts {
			if !t.Act.IsStep() {
				continue
			}
			if t.Act.IsOutput() && t.Act.Subj == watch {
				n.hasWatch = true
				continue
			}
			sk, err := build(t.Target)
			if err != nil {
				return "", err
			}
			n.avoid = append(n.avoid, sk)
		}
		return k, nil
	}
	root, err := build(p)
	if err != nil {
		return false, nil, err
	}
	// DFS over the avoidance subgraph: grey = on stack (cycle), dead end
	// without watch = quiescent failure.
	const (
		white = 0
		grey  = 1
		black = 2
	)
	color := map[string]int{}
	var witness syntax.Proc
	var visit func(k string) bool // true = avoidance possible
	visit = func(k string) bool {
		switch color[k] {
		case grey:
			witness = nodes[k].proc
			return true // cycle: postpone forever
		case black:
			return false
		}
		color[k] = grey
		n := nodes[k]
		if len(n.avoid) == 0 && !n.hasWatch {
			witness = n.proc
			color[k] = black
			return true // quiescent without the barb
		}
		for _, sk := range n.avoid {
			if visit(sk) {
				color[k] = black
				return true
			}
		}
		color[k] = black
		return false
	}
	if visit(root) {
		return false, witness, nil
	}
	return true, nil, nil
}

// RunMany executes n independent runs with distinct seeded random
// schedulers on a bounded worker pool, returning every result. It is the
// Monte-Carlo harness used by the example experiments.
func RunMany(sys *semantics.System, p syntax.Proc, n int, baseSeed int64, opt Options, workers int) ([]Result, error) {
	return RunManyCtx(context.Background(), sys, p, n, baseSeed, opt, workers)
}

// RunManyCtx is RunMany honouring ctx: cancellation aborts every in-flight
// run (each checks the shared context per step) and the first ErrDeadline is
// reported.
func RunManyCtx(ctx context.Context, sys *semantics.System, p syntax.Proc, n int, baseSeed int64, opt Options, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	results := make([]Result, n)
	errs := make([]error, n)
	var wg sync.WaitGroup
	sem := make(chan struct{}, workers)
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			o := opt
			o.Scheduler = NewRandomScheduler(baseSeed + int64(i))
			results[i], errs[i] = RunCtx(ctx, sys, p, o)
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return results, err
		}
	}
	return results, nil
}

// Stats summarises a batch of results.
type Stats struct {
	Runs       int
	Stopped    int
	Quiescent  int
	TotalSteps int
}

// Summarise aggregates results.
func Summarise(rs []Result) Stats {
	st := Stats{Runs: len(rs)}
	for _, r := range rs {
		if r.Stopped {
			st.Stopped++
		}
		if r.Quiescent {
			st.Quiescent++
		}
		st.TotalSteps += r.Steps
	}
	return st
}

// String renders the summary.
func (s Stats) String() string {
	avg := 0.0
	if s.Runs > 0 {
		avg = float64(s.TotalSteps) / float64(s.Runs)
	}
	return fmt.Sprintf("runs=%d stopped=%d quiescent=%d avg-steps=%.1f", s.Runs, s.Stopped, s.Quiescent, avg)
}
