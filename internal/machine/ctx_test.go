package machine

import (
	"context"
	"errors"
	"testing"
	"time"

	"bpi/internal/parser"
	"bpi/internal/syntax"
)

func parseT(t *testing.T, src string) syntax.Proc {
	t.Helper()
	p, err := parser.Parse(src)
	if err != nil {
		t.Fatalf("%s: %v", src, err)
	}
	return p
}

// TestRunCtxDeadline drives an endlessly ticking process under an expired
// deadline: the scheduler loop must return a typed ErrDeadline (unwrapping
// to context.DeadlineExceeded), not spin to the step budget.
func TestRunCtxDeadline(t *testing.T) {
	p := parseT(t, "(rec T(a). a!.T(a))(tick)")
	ctx, cancel := context.WithTimeout(context.Background(), time.Millisecond)
	defer cancel()
	<-ctx.Done()
	_, err := RunCtx(ctx, nil, p, Options{MaxSteps: 1 << 30})
	var ed ErrDeadline
	if !errors.As(err, &ed) {
		t.Fatalf("expected ErrDeadline, got %T: %v", err, err)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("expected the error to unwrap to DeadlineExceeded, got %v", err)
	}
}

// TestRunCtxBudgetIsNotDeadline checks the two run-ending causes stay
// distinct: exhausting MaxSteps is a normal result, not an error.
func TestRunCtxBudgetIsNotDeadline(t *testing.T) {
	p := parseT(t, "(rec T(a). a!.T(a))(tick)")
	res, err := RunCtx(context.Background(), nil, p, Options{MaxSteps: 10})
	if err != nil {
		t.Fatalf("step-budget end must not error, got %v", err)
	}
	if res.Steps != 10 || res.Quiescent {
		t.Fatalf("expected 10 non-quiescent steps, got %+v", res)
	}
}

// TestRunManyCtxCancel checks that cancellation propagates into every run of
// a Monte-Carlo pool.
func TestRunManyCtxCancel(t *testing.T) {
	p := parseT(t, "(rec T(a). a!.T(a))(tick)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := RunManyCtx(ctx, nil, p, 8, 1, Options{MaxSteps: 1 << 30}, 4)
	var ed ErrDeadline
	if !errors.As(err, &ed) {
		t.Fatalf("expected ErrDeadline from the pool, got %v", err)
	}
}

// TestCanReachBarbCtxCancel checks the exhaustive explorer honours ctx.
func TestCanReachBarbCtxCancel(t *testing.T) {
	p := parseT(t, "(rec G(a). a?(x).(x! | G(a)))(a) | a!(b)")
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, err := CanReachBarbCtx(ctx, nil, p, "never", 1<<30)
	var ed ErrDeadline
	if !errors.As(err, &ed) {
		t.Fatalf("expected ErrDeadline, got %v", err)
	}
}
