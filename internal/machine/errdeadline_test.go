package machine

import (
	"context"
	"errors"
	"testing"
)

func TestErrDeadlineRendersAndUnwraps(t *testing.T) {
	err := ErrDeadline{Cause: context.DeadlineExceeded}
	if got, want := err.Error(), "machine: run canceled: context deadline exceeded"; got != want {
		t.Fatalf("Error() = %q, want %q", got, want)
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("errors.Is must see through ErrDeadline to the context cause")
	}
}
