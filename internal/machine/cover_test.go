package machine

import (
	"strings"
	"testing"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

func TestCanReachBarbAvoidingPoisonedStates(t *testing.T) {
	// τ.(goal̄ ‖ poison̄): the goal is reachable, but only through a state
	// that also offers the poison output — the whole state is off-limits.
	p := syntax.TauP(syntax.Group(syntax.SendN("goal"), syntax.SendN("poison")))
	got, err := CanReachBarbAvoiding(nil, p, "goal", names.NewSet("poison"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("poisoned state laundered by not firing the poison output")
	}
	// An honest alternative branch makes it reachable.
	q := syntax.Choice(p, syntax.TauP(syntax.SendN("goal")))
	got, err = CanReachBarbAvoiding(nil, q, "goal", names.NewSet("poison"), 0)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("honest branch not found")
	}
}

func TestCanReachBarbAvoidingBudget(t *testing.T) {
	grow := syntax.Rec{Id: "A", Params: []names.Name{"x"},
		Body: syntax.TauP(syntax.Group(syntax.SendN("x"), syntax.Call{Id: "A", Args: []names.Name{"x"}})),
		Args: []names.Name{"a"}}
	if _, err := CanReachBarbAvoiding(nil, grow, "never", names.NewSet("nope"), 8); err == nil {
		t.Error("budget exhaustion not reported")
	}
}

func TestEventAndStatsStrings(t *testing.T) {
	res, err := Run(nil, syntax.SendN("a", "b"), Options{KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if s := res.Trace[0].String(); !strings.Contains(s, "a!(b)") {
		t.Errorf("event string: %q", s)
	}
	st := Summarise([]Result{res})
	if s := st.String(); !strings.Contains(s, "runs=1") {
		t.Errorf("stats string: %q", s)
	}
	empty := Summarise(nil)
	if s := empty.String(); !strings.Contains(s, "runs=0") {
		t.Errorf("empty stats: %q", s)
	}
}

func TestRunSemanticErrorPropagates(t *testing.T) {
	if _, err := Run(nil, syntax.Call{Id: "Missing"}, Options{}); err == nil {
		t.Error("undefined call must surface as an error")
	}
	if _, err := CanReachBarb(nil, syntax.Call{Id: "Missing"}, "a", 0); err == nil {
		t.Error("undefined call must surface from reachability too")
	}
	if _, _, err := AlwaysReachesBarb(nil, syntax.Call{Id: "Missing"}, "a", 0); err == nil {
		t.Error("undefined call must surface from inevitability too")
	}
}

func TestCanReachBarbBudget(t *testing.T) {
	grow := syntax.Rec{Id: "A", Params: []names.Name{"x"},
		Body: syntax.TauP(syntax.Group(syntax.SendN("x"), syntax.Call{Id: "A", Args: []names.Name{"x"}})),
		Args: []names.Name{"a"}}
	if _, err := CanReachBarb(nil, grow, "never", 8); err == nil {
		t.Error("budget exhaustion not reported")
	}
	if _, _, err := AlwaysReachesBarb(nil, grow, "never", 8); err == nil {
		t.Error("budget exhaustion not reported by AlwaysReachesBarb")
	}
}

func TestBadSchedulerRejected(t *testing.T) {
	bad := schedFunc(func(n, step int) int { return n + 1 })
	if _, err := Run(nil, syntax.SendN("a"), Options{Scheduler: bad}); err == nil {
		t.Error("out-of-range scheduler pick accepted")
	}
}

type schedFunc func(n, step int) int

func (f schedFunc) Pick(n, step int) int { return f(n, step) }
