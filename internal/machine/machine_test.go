package machine

import (
	"testing"

	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
	x names.Name = "x"
)

func TestRunLinear(t *testing.T) {
	p := syntax.Send(a, nil, syntax.Send(b, nil, syntax.SendN(c)))
	res, err := Run(nil, p, Options{KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Quiescent || res.Steps != 3 {
		t.Fatalf("result: %+v", res)
	}
	want := []names.Name{a, b, c}
	for i, ev := range res.Trace {
		if ev.Act.Subj != want[i] {
			t.Fatalf("trace[%d] = %s", i, ev)
		}
	}
}

func TestRunStopOnBarb(t *testing.T) {
	p := syntax.Send(a, nil, syntax.Send(b, nil, syntax.SendN(c)))
	res, err := Run(nil, p, Options{StopOnBarb: []names.Name{b}})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Stopped || res.StopEvent.Act.Subj != b {
		t.Fatalf("result: %+v", res)
	}
	if res.Steps != 2 {
		t.Fatalf("steps = %d", res.Steps)
	}
}

func TestRunBroadcastDelivery(t *testing.T) {
	// āb ‖ a(x).x̄: one broadcast then the forwarded output.
	p := syntax.Group(
		syntax.SendN(a, b),
		syntax.Recv(a, []names.Name{x}, syntax.SendN(x)),
	)
	res, err := Run(nil, p, Options{KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 2 || res.Trace[1].Act.Subj != b {
		t.Fatalf("broadcast run: %+v", res)
	}
}

func TestRunMaxSteps(t *testing.T) {
	loop := syntax.Rec{Id: "A", Params: []names.Name{x},
		Body: syntax.TauP(syntax.Call{Id: "A", Args: []names.Name{x}}),
		Args: []names.Name{a}}
	res, err := Run(nil, loop, Options{MaxSteps: 25})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 25 || res.Quiescent || res.Stopped {
		t.Fatalf("divergent run: %+v", res)
	}
}

func TestSchedulers(t *testing.T) {
	// ā + b̄ resolves differently under different schedulers.
	p := syntax.Choice(syntax.SendN(a), syntax.SendN(b))
	r1, err := Run(nil, p, Options{Scheduler: FirstScheduler{}, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if r1.Trace[0].Act.Subj != a {
		t.Fatalf("first scheduler picked %s", r1.Trace[0])
	}
	seen := names.NewSet()
	for seed := int64(0); seed < 16; seed++ {
		r, err := Run(nil, p, Options{Scheduler: NewRandomScheduler(seed), KeepTrace: true})
		if err != nil {
			t.Fatal(err)
		}
		seen = seen.Add(r.Trace[0].Act.Subj)
	}
	if !seen.Contains(a) || !seen.Contains(b) {
		t.Errorf("random scheduler never explored both branches: %v", seen)
	}
	rr, err := Run(nil, p, Options{Scheduler: RoundRobinScheduler{}})
	if err != nil || rr.Steps != 1 {
		t.Fatalf("round robin: %+v %v", rr, err)
	}
}

func TestCanReachBarb(t *testing.T) {
	p := syntax.TauP(syntax.Choice(syntax.SendN(a), syntax.TauP(syntax.SendN(b))))
	for _, cse := range []struct {
		watch names.Name
		want  bool
	}{{a, true}, {b, true}, {c, false}} {
		got, err := CanReachBarb(nil, p, cse.watch, 0)
		if err != nil {
			t.Fatal(err)
		}
		if got != cse.want {
			t.Errorf("CanReachBarb(%s) = %v", cse.watch, got)
		}
	}
}

func TestAlwaysReachesBarb(t *testing.T) {
	// τ.ā: inevitable.
	p := syntax.TauP(syntax.SendN(a))
	ok, _, err := AlwaysReachesBarb(nil, p, a, 0)
	if err != nil || !ok {
		t.Fatalf("inevitable barb missed: %v %v", ok, err)
	}
	// τ.ā + τ: avoidable by the right branch.
	q := syntax.Choice(syntax.TauP(syntax.SendN(a)), syntax.TauP(syntax.PNil))
	ok, witness, err := AlwaysReachesBarb(nil, q, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("avoidable barb reported inevitable")
	}
	if witness == nil {
		t.Fatal("no counterexample state")
	}
	// Divergence avoiding the barb: (rec A(x). τ.A(x))(c) + τ.ā.
	loop := syntax.Rec{Id: "A", Params: []names.Name{x},
		Body: syntax.TauP(syntax.Call{Id: "A", Args: []names.Name{x}}),
		Args: []names.Name{c}}
	d := syntax.Choice(syntax.TauP(loop), syntax.TauP(syntax.SendN(a)))
	ok, _, err = AlwaysReachesBarb(nil, d, a, 0)
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("divergent avoidance not detected")
	}
}

func TestRunManyAndStats(t *testing.T) {
	p := syntax.Choice(syntax.TauP(syntax.SendN(a)), syntax.TauP(syntax.SendN(b)))
	rs, err := RunMany(nil, p, 32, 7, Options{StopOnBarb: []names.Name{a}}, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := Summarise(rs)
	if st.Runs != 32 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Stopped == 0 || st.Stopped == 32 {
		t.Errorf("expected a mix of stopped/finished runs: %v", st)
	}
	if st.Stopped+st.Quiescent != 32 {
		t.Errorf("every run should stop or quiesce: %v", st)
	}
	if st.String() == "" {
		t.Error("empty summary")
	}
}

func TestRunWithEnv(t *testing.T) {
	env := syntax.Env{}.Define("Ping", []names.Name{"ch"},
		syntax.Send("ch", nil, syntax.Call{Id: "Ping", Args: []names.Name{"ch"}}))
	sys := semantics.NewSystem(env)
	res, err := Run(sys, syntax.Call{Id: "Ping", Args: []names.Name{a}}, Options{MaxSteps: 10, KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 10 || res.Trace[9].Act.Subj != a {
		t.Fatalf("env run: %+v", res)
	}
}
