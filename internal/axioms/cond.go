// Package axioms mechanises Section 5 of the paper: the axiom system A for
// strong congruence (Table 6), the restriction axioms (Table 7), the
// expansion axiom (Table 8), head normal forms (Definition 17), and a
// decision procedure for A ⊢ p = q on finite processes that follows the
// completeness proof of Theorem 7 — world enumeration over complete
// conditions, strict summand matching, (H)-saturation of continuations and
// (SP)-style per-instantiation input matching.
package axioms

import (
	"fmt"
	"sort"
	"strings"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Cond is a generalised condition φ ::= true | (x=y) | ¬φ | φ∧φ
// (Section 5.1). (x≠y) is sugar for ¬(x=y), false for ¬true.
type Cond interface {
	isCond()
	// Eval evaluates the condition under a name identification: two names
	// are equal iff eq maps them to the same representative.
	Eval(eq names.Subst) bool
	String() string
}

// True is the trivially satisfied condition.
type True struct{}

// Eq is the match condition (X=Y).
type Eq struct{ X, Y names.Name }

// Not is ¬C.
type Not struct{ C Cond }

// And is C1 ∧ C2.
type And struct{ L, R Cond }

func (True) isCond() {}
func (Eq) isCond()   {}
func (Not) isCond()  {}
func (And) isCond()  {}

// False returns the unsatisfiable condition ¬true.
func False() Cond { return Not{True{}} }

// Neq returns (x≠y).
func Neq(x, y names.Name) Cond { return Not{Eq{x, y}} }

// Conj folds a conjunction (empty = true).
func Conj(cs ...Cond) Cond {
	var out Cond = True{}
	for _, c := range cs {
		if _, ok := c.(True); ok {
			continue
		}
		if _, ok := out.(True); ok {
			out = c
		} else {
			out = And{out, c}
		}
	}
	return out
}

// Eval implementations.
func (True) Eval(names.Subst) bool     { return true }
func (e Eq) Eval(eq names.Subst) bool  { return eq.Apply(e.X) == eq.Apply(e.Y) }
func (n Not) Eval(eq names.Subst) bool { return !n.C.Eval(eq) }
func (a And) Eval(eq names.Subst) bool { return a.L.Eval(eq) && a.R.Eval(eq) }

func (True) String() string  { return "true" }
func (e Eq) String() string  { return fmt.Sprintf("[%s=%s]", e.X, e.Y) }
func (n Not) String() string { return "¬" + n.C.String() }
func (a And) String() string { return a.L.String() + "∧" + a.R.String() }

// CondNames returns the names mentioned by a condition.
func CondNames(c Cond) names.Set {
	switch t := c.(type) {
	case True:
		return names.NewSet()
	case Eq:
		return names.NewSet(t.X, t.Y)
	case Not:
		return CondNames(t.C)
	case And:
		return CondNames(t.L).AddAll(CondNames(t.R))
	}
	panic("axioms: unknown condition")
}

// World is a complete condition on a name set V (Definition 16),
// represented as the equivalence relation it induces: a substitution
// mapping every name of V to the least name of its class.
type World struct {
	V   []names.Name
	Rep names.Subst
}

// Subst returns the representative substitution σ_R of the world: applying
// it to a term decides every match over V exactly as the complete condition
// does (distinct representatives stay distinct names, which the transition
// rules treat as unequal).
func (w World) Subst() names.Subst { return w.Rep }

// Cond renders the world as a complete condition on V: the conjunction of
// all equations within classes and disequations across classes.
func (w World) Cond() Cond {
	var parts []Cond
	for i, x := range w.V {
		for _, y := range w.V[i+1:] {
			if w.Rep.Apply(x) == w.Rep.Apply(y) {
				parts = append(parts, Eq{x, y})
			} else {
				parts = append(parts, Neq(x, y))
			}
		}
	}
	return Conj(parts...)
}

// String renders the world's partition, e.g. "{a=b | c}".
func (w World) String() string {
	classes := map[names.Name][]names.Name{}
	for _, x := range w.V {
		r := w.Rep.Apply(x)
		classes[r] = append(classes[r], x)
	}
	reps := make([]names.Name, 0, len(classes))
	for r := range classes {
		reps = append(reps, r)
	}
	sort.Slice(reps, func(i, j int) bool { return reps[i] < reps[j] })
	var b strings.Builder
	b.WriteByte('{')
	for i, r := range reps {
		if i > 0 {
			b.WriteString(" | ")
		}
		for j, x := range classes[r] {
			if j > 0 {
				b.WriteByte('=')
			}
			b.WriteString(string(x))
		}
	}
	b.WriteByte('}')
	return b.String()
}

// Worlds enumerates every partition of V (every complete condition on V,
// Definition 16). The count is the Bell number of |V|; callers should keep
// V small (≤ 6 names ⇒ 203 worlds).
func Worlds(v names.Set) []World {
	sorted := v.Sorted()
	var out []World
	var rec func(i int, classes [][]names.Name)
	rec = func(i int, classes [][]names.Name) {
		if i == len(sorted) {
			rep := names.Subst{}
			for _, cls := range classes {
				least := cls[0]
				for _, x := range cls {
					if x < least {
						least = x
					}
				}
				for _, x := range cls {
					rep[x] = least
				}
			}
			out = append(out, World{V: append([]names.Name(nil), sorted...), Rep: rep})
			return
		}
		x := sorted[i]
		for k := range classes {
			classes[k] = append(classes[k], x)
			rec(i+1, classes)
			classes[k] = classes[k][:len(classes[k])-1]
		}
		rec(i+1, append(classes, []names.Name{x}))
	}
	rec(0, nil)
	return out
}

// Agrees reports whether a substitution σ agrees with a condition φ
// (Definition 18): for names x, y of φ, σ(x)=σ(y) iff φ ⇒ (x=y).
func Agrees(sigma names.Subst, c Cond) bool {
	return c.Eval(sigma)
}

// Implies reports φ ⇒ ψ over the given name universe, by checking every
// world.
func Implies(phi, psi Cond, v names.Set) bool {
	u := v.Clone().AddAll(CondNames(phi)).AddAll(CondNames(psi))
	for _, w := range Worlds(u) {
		if phi.Eval(w.Rep) && !psi.Eval(w.Rep) {
			return false
		}
	}
	return true
}

// Equivalent reports φ ⇔ ψ over the given name universe.
func Equivalent(phi, psi Cond, v names.Set) bool {
	return Implies(phi, psi, v) && Implies(psi, phi, v)
}

// Satisfiable reports that some world satisfies φ.
func Satisfiable(phi Cond, v names.Set) bool {
	u := v.Clone().AddAll(CondNames(phi))
	for _, w := range Worlds(u) {
		if phi.Eval(w.Rep) {
			return true
		}
	}
	return false
}

// CondProc builds the process φp (the paper's shorthand for φp,nil),
// compiling a generalised condition into nested matches of the core syntax.
func CondProc(c Cond, p syntax.Proc) syntax.Proc {
	return compileCond(c, p, syntax.PNil)
}

// CondProc2 builds φp,q: behaves as yes when c holds and as no otherwise.
// ¬ compiles by swapping branches; ∧ by nesting.
func CondProc2(c Cond, yes, no syntax.Proc) syntax.Proc {
	return compileCond(c, yes, no)
}

func compileCond(c Cond, yes, no syntax.Proc) syntax.Proc {
	switch t := c.(type) {
	case True:
		return yes
	case Eq:
		return syntax.If(t.X, t.Y, yes, no)
	case Not:
		return compileCond(t.C, no, yes)
	case And:
		return compileCond(t.L, compileCond(t.R, yes, no), no)
	}
	panic("axioms: unknown condition")
}
