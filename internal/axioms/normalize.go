package axioms

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// NormalForm rewrites a finite process into the §5.2 normal form using only
// the axiom system: the expansion axiom (Table 8, in its condition-guarded
// form) eliminates every parallel composition, and the restriction axioms
// (Table 7) push every ν inward until it disappears (R1/RP3/RM1), turns into
// a τ (RP2), or fuses with an output into a bound-output prefix νx āx̃.p.
// The result is a sum of condition-guarded prefixes whose continuations are
// again in normal form.
//
// Soundness: every rewrite is an axiom instance, so NormalForm(p) ~c p
// (Theorem 6) — verified on random terms in the tests. Arity caveat: like
// Table 8 itself, the expansion step is faithful on the uniform-arity
// fragment (see Expand); the paper's §5 is explicitly monadic.
func NormalForm(p syntax.Proc) (syntax.Proc, error) {
	if !syntax.IsFinite(p) {
		return nil, fmt.Errorf("axioms: normal form requires a finite process")
	}
	n := &normalizer{}
	return n.norm(p), nil
}

type normalizer struct{ fresh int }

func (n *normalizer) freshName(base names.Name, avoid names.Set) names.Name {
	return syntax.FreshVariant(base, avoid)
}

// gsummand is a condition-guarded prefix summand φπ.p, with an optional
// bound-output binder (νx āx̃ when x ∈ x̃).
type gsummand struct {
	cond   Cond
	binder names.Name // "" unless a bound output
	pre    syntax.Pre
	cont   syntax.Proc
}

func (n *normalizer) norm(p syntax.Proc) syntax.Proc {
	switch t := p.(type) {
	case syntax.Nil:
		return t
	case syntax.Prefix:
		return syntax.Prefix{Pre: t.Pre, Cont: n.norm(t.Cont)}
	case syntax.Sum:
		return syntax.Sum{L: n.norm(t.L), R: n.norm(t.R)}
	case syntax.Match:
		return syntax.Match{X: t.X, Y: t.Y, Then: n.norm(t.Then), Else: n.norm(t.Else)}
	case syntax.Res:
		return n.pushRes(t.X, n.norm(t.Body))
	case syntax.Par:
		return n.par(n.norm(t.L), n.norm(t.R))
	default:
		panic("axioms: non-finite node in NormalForm")
	}
}

// par eliminates one parallel composition of two normalized operands via the
// guarded expansion law.
func (n *normalizer) par(a, b syntax.Proc) syntax.Proc {
	// Hoist static restrictions (bound-output atoms and stray ν) of both
	// operands to the outside, alpha-freshened (laws j/k of Lemma 6, all
	// axiom instances).
	var binders []names.Name
	avoid := syntax.FreeNames(a).AddAll(syntax.FreeNames(b))
	a, binders, avoid = n.hoist(a, binders, avoid)
	b, binders, avoid = n.hoist(b, binders, avoid)
	la, ok1 := n.gsummands(a, True{})
	lb, ok2 := n.gsummands(b, True{})
	if !ok1 || !ok2 {
		// Should not happen for normalized, hoisted finite operands.
		panic("axioms: operand not a guarded prefix sum after hoisting")
	}
	out := n.gexpand(la, lb, a, b)
	// Re-bind the hoisted names.
	for i := len(binders) - 1; i >= 0; i-- {
		out = n.pushRes(binders[i], out)
	}
	return out
}

// hoist pulls static restrictions of p (at sum/match/top positions) out,
// renaming them fresh; returns the stripped process and the binder list.
func (n *normalizer) hoist(p syntax.Proc, binders []names.Name, avoid names.Set) (syntax.Proc, []names.Name, names.Set) {
	switch t := p.(type) {
	case syntax.Res:
		x := n.freshName(t.X, avoid)
		avoid = avoid.Add(x)
		body := syntax.Rename(t.Body, t.X, x)
		binders = append(binders, x)
		return n.hoist(body, binders, avoid)
	case syntax.Sum:
		l, binders, avoid := n.hoist(t.L, binders, avoid)
		r, binders, avoid := n.hoist(t.R, binders, avoid)
		return syntax.Sum{L: l, R: r}, binders, avoid
	case syntax.Match:
		l, binders, avoid := n.hoist(t.Then, binders, avoid)
		r, binders, avoid := n.hoist(t.Else, binders, avoid)
		return syntax.Match{X: t.X, Y: t.Y, Then: l, Else: r}, binders, avoid
	default:
		return p, binders, avoid
	}
}

// gsummands flattens a hoisted normalized term into guarded summands.
func (n *normalizer) gsummands(p syntax.Proc, guard Cond) ([]gsummand, bool) {
	switch t := p.(type) {
	case syntax.Nil:
		return nil, true
	case syntax.Prefix:
		return []gsummand{{cond: guard, pre: t.Pre, cont: t.Cont}}, true
	case syntax.Sum:
		l, ok := n.gsummands(t.L, guard)
		if !ok {
			return nil, false
		}
		r, ok := n.gsummands(t.R, guard)
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	case syntax.Match:
		l, ok := n.gsummands(t.Then, Conj(guard, Eq{t.X, t.Y}))
		if !ok {
			return nil, false
		}
		r, ok := n.gsummands(t.Else, Conj(guard, Neq(t.X, t.Y)))
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	default:
		return nil, false
	}
}

// rebuild turns guarded summands back into a term.
func rebuild(ss []gsummand) syntax.Proc {
	parts := make([]syntax.Proc, 0, len(ss))
	for _, s := range ss {
		var body syntax.Proc = syntax.Prefix{Pre: s.pre, Cont: s.cont}
		if s.binder != "" {
			body = syntax.Res{X: s.binder, Body: body}
		}
		parts = append(parts, CondProc(s.cond, body))
	}
	return syntax.Choice(parts...)
}

// gexpand is the condition-guarded expansion axiom (Table 8) over guarded
// summand lists; pw and qw are the whole (hoisted) operands for the discard
// families. Continuations are normalized recursively.
func (n *normalizer) gexpand(ps, qs []gsummand, pw, qw syntax.Proc) syntax.Proc {
	var out []gsummand
	inP := inputChannelsOf(ps)
	inQ := inputChannelsOf(qs)

	pairPar := func(l, r syntax.Proc) syntax.Proc { return n.par(l, r) }

	// Family 1: joint inputs, [x=y]-guarded.
	for _, sp := range ps {
		pin, ok := sp.pre.(syntax.In)
		if !ok {
			continue
		}
		for _, sq := range qs {
			qin, ok := sq.pre.(syntax.In)
			if !ok || len(qin.Params) != len(pin.Params) {
				continue
			}
			avoid := syntax.FreeNames(sp.cont).AddAll(syntax.FreeNames(sq.cont)).
				AddSlice(pin.Params).AddSlice(qin.Params).Add(pin.Ch).Add(qin.Ch)
			params := make([]names.Name, len(pin.Params))
			for i := range params {
				params[i] = n.freshName(pin.Params[i], avoid)
				avoid = avoid.Add(params[i])
			}
			cl := syntax.Instantiate(sp.cont, pin.Params, params)
			cr := syntax.Instantiate(sq.cont, qin.Params, params)
			out = append(out, gsummand{
				cond: Conj(sp.cond, sq.cond, Eq{pin.Ch, qin.Ch}),
				pre:  syntax.In{Ch: pin.Ch, Params: params},
				cont: pairPar(cl, cr),
			})
		}
	}
	// Families 2–5: outputs heard or discarded, both orientations.
	out = append(out, n.gOutFamilies(ps, qs, qw, inQ, false)...)
	out = append(out, n.gOutFamilies(qs, ps, pw, inP, true)...)
	// Families 6–7: inputs alone.
	out = append(out, n.gInAlone(ps, qw, inQ, false)...)
	out = append(out, n.gInAlone(qs, pw, inP, true)...)
	// Families 8–9: τ interleavings.
	for _, sp := range ps {
		if _, ok := sp.pre.(syntax.Tau); ok {
			out = append(out, gsummand{cond: sp.cond, pre: syntax.Tau{},
				cont: pairPar(sp.cont, qw)})
		}
	}
	for _, sq := range qs {
		if _, ok := sq.pre.(syntax.Tau); ok {
			out = append(out, gsummand{cond: sq.cond, pre: syntax.Tau{},
				cont: pairPar(pw, sq.cont)})
		}
	}
	// Drop unsatisfiable summands (C4).
	kept := out[:0]
	universe := syntax.FreeNames(pw).AddAll(syntax.FreeNames(qw))
	for _, s := range out {
		if Satisfiable(s.cond, universe) {
			kept = append(kept, s)
		}
	}
	return rebuild(kept)
}

func inputChannelsOf(ss []gsummand) []names.Name {
	set := names.NewSet()
	for _, s := range ss {
		if in, ok := s.pre.(syntax.In); ok {
			set = set.Add(in.Ch)
		}
	}
	return set.Sorted()
}

func (n *normalizer) gOutFamilies(movers, sibs []gsummand, sibWhole syntax.Proc,
	sibChans []names.Name, flip bool) []gsummand {
	var out []gsummand
	pair := func(m, s syntax.Proc) syntax.Proc {
		if flip {
			return n.par(s, m)
		}
		return n.par(m, s)
	}
	for _, mv := range movers {
		o, ok := mv.pre.(syntax.Out)
		if !ok {
			continue
		}
		for _, sb := range sibs {
			in, ok := sb.pre.(syntax.In)
			if !ok || len(in.Params) != len(o.Args) {
				continue
			}
			recv := syntax.Instantiate(sb.cont, in.Params, o.Args)
			out = append(out, gsummand{
				cond: Conj(mv.cond, sb.cond, Eq{o.Ch, in.Ch}),
				pre:  syntax.Out{Ch: o.Ch, Args: o.Args},
				cont: pair(mv.cont, recv),
			})
		}
		out = append(out, gsummand{
			cond: Conj(mv.cond, notIn(o.Ch, sibChans)),
			pre:  syntax.Out{Ch: o.Ch, Args: o.Args},
			cont: pair(mv.cont, sibWhole),
		})
	}
	return out
}

func (n *normalizer) gInAlone(movers []gsummand, sibWhole syntax.Proc,
	sibChans []names.Name, flip bool) []gsummand {
	var out []gsummand
	pair := func(m, s syntax.Proc) syntax.Proc {
		if flip {
			return n.par(s, m)
		}
		return n.par(m, s)
	}
	sibFree := syntax.FreeNames(sibWhole)
	for _, mv := range movers {
		in, ok := mv.pre.(syntax.In)
		if !ok {
			continue
		}
		params, cont := in.Params, mv.cont
		if sibFree.ContainsAny(params) {
			avoid := sibFree.Clone().AddAll(syntax.FreeNames(cont)).AddSlice(params)
			ren := names.Subst{}
			np := make([]names.Name, len(params))
			for i, b := range params {
				if sibFree.Contains(b) {
					np[i] = n.freshName(b, avoid)
					avoid = avoid.Add(np[i])
					ren[b] = np[i]
				} else {
					np[i] = b
				}
			}
			cont = syntax.Apply(cont, ren)
			params = np
		}
		out = append(out, gsummand{
			cond: Conj(mv.cond, notIn(in.Ch, sibChans)),
			pre:  syntax.In{Ch: in.Ch, Params: params},
			cont: pair(cont, sibWhole),
		})
	}
	return out
}

// pushRes pushes νx into a normalized term per Table 7.
func (n *normalizer) pushRes(x names.Name, p syntax.Proc) syntax.Proc {
	if !syntax.FreeNames(p).Contains(x) {
		return p // R1-unused
	}
	switch t := p.(type) {
	case syntax.Nil:
		return t
	case syntax.Sum: // R2
		return syntax.Sum{L: n.pushRes(x, t.L), R: n.pushRes(x, t.R)}
	case syntax.Match:
		switch {
		case t.X == t.Y: // (y=y): the then branch
			return n.pushRes(x, t.Then)
		case t.X == x || t.Y == x: // RM1: the private x equals nothing else
			return n.pushRes(x, t.Else)
		default: // RM2
			return syntax.Match{X: t.X, Y: t.Y,
				Then: n.pushRes(x, t.Then), Else: n.pushRes(x, t.Else)}
		}
	case syntax.Res:
		// R1 (swap) then push inside: νx νy q = νy νx q.
		return syntax.Res{X: t.X, Body: n.pushRes(x, t.Body)}
	case syntax.Prefix:
		switch pre := t.Pre.(type) {
		case syntax.Tau: // R3
			return syntax.TauP(n.pushRes(x, t.Cont))
		case syntax.In:
			if pre.Ch == x {
				return syntax.PNil // RP3
			}
			// Alpha: parameters never collide with x (binders are fresh).
			return syntax.Prefix{Pre: pre, Cont: n.pushRes(x, t.Cont)}
		case syntax.Out:
			if pre.Ch == x {
				return syntax.TauP(n.pushRes(x, t.Cont)) // RP2
			}
			for _, a := range pre.Args {
				if a == x {
					// Bound output: the ν fuses with the prefix; the
					// continuation keeps x in scope and stays as computed.
					return syntax.Res{X: x, Body: syntax.Prefix{Pre: pre, Cont: t.Cont}}
				}
			}
			return syntax.Prefix{Pre: pre, Cont: n.pushRes(x, t.Cont)} // R3
		}
		panic("axioms: unknown prefix")
	default:
		panic("axioms: unexpected node under restriction in normal form")
	}
}

// IsNormalForm reports whether p is in the §5.2 normal form: no parallel
// composition anywhere, and every restriction is a bound-output prefix
// (νx āx̃.q with x ∈ x̃ and x ∉ {a}).
func IsNormalForm(p syntax.Proc) bool {
	switch t := p.(type) {
	case syntax.Nil, syntax.Call:
		return true
	case syntax.Prefix:
		return IsNormalForm(t.Cont)
	case syntax.Sum:
		return IsNormalForm(t.L) && IsNormalForm(t.R)
	case syntax.Match:
		return IsNormalForm(t.Then) && IsNormalForm(t.Else)
	case syntax.Par:
		return false
	case syntax.Res:
		pre, ok := t.Body.(syntax.Prefix)
		if !ok {
			return false
		}
		out, ok := pre.Pre.(syntax.Out)
		if !ok || out.Ch == t.X {
			return false
		}
		carried := false
		for _, a := range out.Args {
			if a == t.X {
				carried = true
			}
		}
		return carried && IsNormalForm(pre.Cont)
	case syntax.Rec:
		return false
	default:
		return false
	}
}
