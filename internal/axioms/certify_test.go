package axioms

import (
	"strings"
	"testing"

	"bpi/internal/cert"
	"bpi/internal/syntax"
)

// certProverPairs spans the proof shapes: plain matches, (C) commutation,
// (H)-saturation, (SP) input instantiation, bound outputs, and refutations by
// every failure kind (shape mismatch, discard mismatch, unmatched τ, output
// and input instantiation).
func certProverPairs() []struct {
	p, q syntax.Proc
	want bool
} {
	send := syntax.SendN(a, b)
	recv := syntax.RecvN(a, x)
	return []struct {
		p, q syntax.Proc
		want bool
	}{
		{send, send, true},
		{syntax.Choice(send, send), send, true},
		{syntax.Choice(syntax.TauP(send), syntax.TauP(syntax.SendN(a, c))),
			syntax.Choice(syntax.TauP(syntax.SendN(a, c)), syntax.TauP(send)), true},
		{syntax.Group(send, recv), syntax.Group(recv, send), true},
		{syntax.If(a, b, send, syntax.PNil), syntax.If(b, a, send, syntax.PNil), true},
		{syntax.Restrict(syntax.SendN(a, x), x), syntax.Restrict(syntax.SendN(a, b), b), true},
		{recv, syntax.RecvN(a, x), true},
		{send, syntax.SendN(a, c), false},
		{send, syntax.TauP(send), false},
		{recv, syntax.PNil, false},
		{recv, syntax.RecvN(b, x), false},
		{syntax.RecvN(a, x), syntax.RecvN(a), false},
		{syntax.TauP(send), syntax.TauP(syntax.SendN(a, c)), false},
		{syntax.RecvN(a, x, "x2"), syntax.RecvN(a, x), false},
		// The Remark 4 separator: the stuck mixed-arity listener pair neither
		// receives nor discards on a, so only the discard sets distinguish it
		// from 0 — the proof must record a "discards" failure.
		{syntax.Group(syntax.RecvN(a), syntax.RecvN(a, x)), syntax.PNil, false},
	}
}

func TestAxiomCertificatesVerify(t *testing.T) {
	for _, cse := range certProverPairs() {
		pr := NewProver(nil)
		pr.Certify = true
		got, err := pr.Decide(cse.p, cse.q)
		ctxt := syntax.String(cse.p) + " vs " + syntax.String(cse.q)
		if err != nil {
			t.Fatalf("%s: %v", ctxt, err)
		}
		if got != cse.want {
			t.Fatalf("%s: Decide = %v, want %v", ctxt, got, cse.want)
		}
		crt := pr.Certificate()
		if crt == nil {
			t.Fatalf("%s: no certificate recorded", ctxt)
		}
		if crt.Related != got {
			t.Fatalf("%s: certificate verdict %v, Decide said %v", ctxt, crt.Related, got)
		}
		if err := cert.Verify(crt); err != nil {
			data, _ := crt.Marshal()
			t.Fatalf("%s: certificate rejected: %v\n%s", ctxt, err, data)
		}
	}
}

// TestUncertifiedProverRecordsNothing pins that certification is opt-in and
// that a later certified call on the same prover works (the memo is reset).
func TestUncertifiedProverRecordsNothing(t *testing.T) {
	pr := NewProver(nil)
	p := syntax.SendN(a, b)
	if _, err := pr.Decide(p, p); err != nil {
		t.Fatal(err)
	}
	if pr.Certificate() != nil {
		t.Fatal("uncertified Decide recorded a certificate")
	}
	pr.Certify = true
	if _, err := pr.Decide(p, p); err != nil {
		t.Fatal(err)
	}
	if pr.Certificate() == nil {
		t.Fatal("certified Decide after an uncertified one recorded nothing")
	}
	if err := cert.Verify(pr.Certificate()); err != nil {
		t.Fatal(err)
	}
}

// TestTamperedProofRejected mutates sound proof objects step by step: the
// deliberately-simple verifier must catch every alteration.
func TestTamperedProofRejected(t *testing.T) {
	pr := NewProver(nil)
	pr.Certify = true

	// Positive proof: τ.āb + τ.āc ≃ τ.āc + τ.āb has real match steps.
	p := syntax.Choice(syntax.TauP(syntax.SendN(a, b)), syntax.TauP(syntax.SendN(a, c)))
	q := syntax.Choice(syntax.TauP(syntax.SendN(a, c)), syntax.TauP(syntax.SendN(a, b)))
	ok, err := pr.Decide(p, q)
	if err != nil || !ok {
		t.Fatalf("Decide = %v, %v", ok, err)
	}
	pos := pr.Certificate()
	if err := cert.Verify(pos); err != nil {
		t.Fatalf("baseline positive rejected: %v", err)
	}

	t.Run("flipped verdict", func(t *testing.T) {
		m := cloneCert(t, pos)
		m.Related = false
		if cert.Verify(m) == nil {
			t.Error("positive proof relabelled negative verified")
		}
	})
	t.Run("dropped world", func(t *testing.T) {
		m := cloneCert(t, pos)
		m.Proof.Worlds = m.Proof.Worlds[:len(m.Proof.Worlds)-1]
		if cert.Verify(m) == nil {
			t.Error("proof missing a world verified")
		}
	})
	t.Run("redirected tau partner", func(t *testing.T) {
		m := cloneCert(t, pos)
		mutated := false
		for gi := range m.Proof.Goals {
			g := &m.Proof.Goals[gi]
			if len(g.Taus) > 0 {
				// Claim the mover matches a partner the other side does
				// not offer.
				g.Taus[0].Partner = "0"
				mutated = true
				break
			}
		}
		if !mutated {
			t.Fatal("no τ match step to tamper with")
		}
		if cert.Verify(m) == nil {
			t.Error("proof with a redirected τ partner verified")
		}
	})
	t.Run("proved goal with smuggled failure", func(t *testing.T) {
		m := cloneCert(t, pos)
		m.Proof.Goals[m.Proof.Worlds[0].Goal].FailKind = "shapes"
		if cert.Verify(m) == nil {
			t.Error("proved goal carrying a failure kind verified")
		}
	})

	// Negative proof: τ.āb ≄ τ.āc — the τ summands are candidate partners,
	// so the failure carries genuine refutation steps.
	ok, err = pr.Decide(syntax.TauP(syntax.SendN(a, b)), syntax.TauP(syntax.SendN(a, c)))
	if err != nil || ok {
		t.Fatalf("Decide = %v, %v", ok, err)
	}
	neg := pr.Certificate()
	if err := cert.Verify(neg); err != nil {
		t.Fatalf("baseline negative rejected: %v", err)
	}

	t.Run("dropped refutation", func(t *testing.T) {
		m := cloneCert(t, neg)
		mutated := false
		for gi := range m.Proof.Goals {
			g := &m.Proof.Goals[gi]
			if len(g.Refutes) > 0 {
				g.Refutes = nil
				mutated = true
			}
		}
		if !mutated {
			t.Fatal("no refutation steps to drop")
		}
		if err := cert.Verify(m); err == nil {
			t.Error("refutation with dropped candidate refutes verified")
		} else if !strings.Contains(err.Error(), "not refuted") &&
			!strings.Contains(err.Error(), "unknown failure kind") {
			t.Errorf("unexpected rejection: %v", err)
		}
	})
	t.Run("wrong failing world", func(t *testing.T) {
		m := cloneCert(t, neg)
		m.Proof.Worlds[0].Rep = map[string]string{"a": "zz", "zz": "zz"}
		if cert.Verify(m) == nil {
			t.Error("refutation naming a bogus world verified")
		}
	})
}

func cloneCert(t *testing.T, c *cert.Certificate) *cert.Certificate {
	t.Helper()
	data, err := c.Marshal()
	if err != nil {
		t.Fatal(err)
	}
	out, err := cert.Unmarshal(data)
	if err != nil {
		t.Fatal(err)
	}
	return out
}
