package axioms

import (
	"testing"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// headIns is the soundness guard of the catalogue's conditional (H)
// instance: it must over-approximate the head-listening channels across
// BOTH match branches, strip restricted names, and refuse (known=false)
// anything whose unfoldings it would have to chase.
func TestHeadInsApproximation(t *testing.T) {
	in := func(ch names.Name, cont syntax.Proc) syntax.Proc {
		return syntax.Recv(ch, []names.Name{"x"}, cont)
	}
	cases := []struct {
		name  string
		p     syntax.Proc
		want  []names.Name
		known bool
	}{
		{"nil", syntax.PNil, nil, true},
		{"input head", in("a", syntax.PNil), []names.Name{"a"}, true},
		{"output head ignores its continuation", syntax.Send("a", nil, in("b", syntax.PNil)), nil, true},
		{"tau head", syntax.TauP(in("b", syntax.PNil)), nil, true},
		{"sum unions", syntax.Choice(in("a", syntax.PNil), in("b", syntax.PNil)), []names.Name{"a", "b"}, true},
		{"par unions", syntax.Group(in("a", syntax.PNil), in("b", syntax.PNil)), []names.Name{"a", "b"}, true},
		{"match takes BOTH branches", syntax.If("u", "v", in("a", syntax.PNil), in("b", syntax.PNil)), []names.Name{"a", "b"}, true},
		{"restriction strips its binder", syntax.Restrict(in("a", syntax.PNil), "a"), nil, true},
		{"restriction keeps others", syntax.Restrict(in("a", syntax.PNil), "z"), []names.Name{"a"}, true},
		{"call refused", syntax.Call{Id: "D"}, nil, false},
		{"rec refused", syntax.Rec{Id: "D", Body: syntax.PNil}, nil, false},
		{"refusal propagates through res", syntax.Restrict(syntax.Call{Id: "D"}, "z"), nil, false},
		{"refusal propagates through sum left", syntax.Choice(syntax.Call{Id: "D"}, syntax.PNil), nil, false},
		{"refusal propagates through sum right", syntax.Choice(syntax.PNil, syntax.Call{Id: "D"}), nil, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			got, known := headIns(tc.p)
			if known != tc.known {
				t.Fatalf("known = %t, want %t", known, tc.known)
			}
			if !known {
				return
			}
			if !got.Equal(names.NewSet(tc.want...)) {
				t.Errorf("headIns = %v, want %v", got.Sorted(), tc.want)
			}
		})
	}
}

func TestSemanticsSystemIsShared(t *testing.T) {
	if semanticsSystem() == nil || semanticsSystem() != semanticsSystem() {
		t.Fatal("semanticsSystem must return one shared instance")
	}
}

// The Cond interface is sealed: exactly these four constructors.
func TestCondSealed(t *testing.T) {
	for _, c := range []Cond{True{}, Eq{"a", "b"}, Not{C: True{}}, And{L: True{}, R: True{}}} {
		c.isCond()
	}
}
