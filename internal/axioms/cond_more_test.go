package axioms

import (
	"strings"
	"testing"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// TestCondStrings pins the rendering of the condition grammar (the strings
// appear in prover traces and error messages).
func TestCondStrings(t *testing.T) {
	cases := []struct {
		c    Cond
		want string
	}{
		{True{}, "true"},
		{Eq{a, b}, "[a=b]"},
		{Neq(a, b), "¬[a=b]"},
		{False(), "¬true"},
		{And{Eq{a, b}, Neq(a, c)}, "[a=b]∧¬[a=c]"},
	}
	for _, cse := range cases {
		if got := cse.c.String(); got != cse.want {
			t.Errorf("String(%#v) = %q, want %q", cse.c, got, cse.want)
		}
	}
}

// TestWorldSubstAgrees ties World.Subst to Agrees (Definition 18): every
// world's representative substitution agrees with the world's own complete
// condition, and with no other world's.
func TestWorldSubstAgrees(t *testing.T) {
	v := names.NewSet(a, b, c)
	ws := Worlds(v)
	for i, w := range ws {
		if !Agrees(w.Subst(), w.Cond()) {
			t.Errorf("world %s does not agree with its own condition", w)
		}
		for j, u := range ws {
			if i != j && Agrees(w.Subst(), u.Cond()) {
				t.Errorf("world %s agrees with foreign condition of %s", w, u)
			}
		}
	}
}

// TestProverTraceAndBounds checks the derivation-outline surface (Tracing /
// TraceLines) and the explicit MaxNames/MaxSteps overrides.
func TestProverTraceAndBounds(t *testing.T) {
	pr := NewProver(nil)
	pr.Tracing = true
	pr.MaxNames = 4
	pr.MaxSteps = 50000
	p := syntax.Choice(syntax.SendN(a, b), syntax.TauP(syntax.PNil))
	ok, err := pr.Decide(p, p)
	if err != nil || !ok {
		t.Fatalf("Decide(p,p) = %v, %v", ok, err)
	}
	lines := pr.TraceLines()
	if len(lines) == 0 {
		t.Fatal("Tracing produced no trace lines")
	}
	joined := strings.Join(lines, "\n")
	if !strings.Contains(joined, "world") {
		t.Errorf("trace mentions no world specialisation:\n%s", joined)
	}
	// A fresh silent prover keeps no trace.
	quiet := NewProver(nil)
	if ok, err := quiet.Decide(p, p); err != nil || !ok {
		t.Fatalf("quiet Decide = %v, %v", ok, err)
	}
	if len(quiet.TraceLines()) != 0 {
		t.Error("silent prover recorded trace lines")
	}
}

// TestHNFInputChannels pins the listener summary of a head normal form:
// channels with the arities of their input binders, per world.
func TestHNFInputChannels(t *testing.T) {
	// a?(x).0 + a?(x,y).0 + b!().0 listens on a at arities 1 and 2.
	p := syntax.Choice(
		syntax.Recv(a, []names.Name{x}, syntax.PNil),
		syntax.Recv(a, []names.Name{x, "y"}, syntax.PNil),
		syntax.SendN(b),
	)
	h, err := ComputeHNF(sharedSys, p, syntax.FreeNames(p))
	if err != nil {
		t.Fatal(err)
	}
	for i := range h.Worlds {
		ins := h.InputChannels(i)
		if len(ins) != 1 || ins[a] == nil {
			t.Fatalf("world %d: InputChannels = %v, want listeners on a only", i, ins)
		}
		if !ins[a][1] || !ins[a][2] || len(ins[a]) != 2 {
			t.Errorf("world %d: arities on a = %v, want {1,2}", i, ins[a])
		}
	}
}
