package axioms

import (
	"testing"

	"bpi/internal/equiv"
	"bpi/internal/names"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

func TestNormalFormShape(t *testing.T) {
	cases := []syntax.Proc{
		syntax.Group(syntax.SendN(a), syntax.RecvN(a)),
		syntax.Restrict(syntax.Send(a, []names.Name{x}, syntax.SendN(x)), x),
		syntax.Group(
			syntax.Restrict(syntax.SendN(a, x), x),
			syntax.Recv(a, []names.Name{"y"}, syntax.SendN("y")),
		),
		syntax.If(a, b, syntax.Group(syntax.SendN(a), syntax.SendN(b)), syntax.PNil),
		syntax.Restrict(syntax.Group(syntax.SendN(x), syntax.RecvN(x, "y")), x),
	}
	for i, p := range cases {
		nf, err := NormalForm(p)
		if err != nil {
			t.Fatalf("case %d: %v", i, err)
		}
		if !IsNormalForm(nf) {
			t.Errorf("case %d: not in normal form:\n in  = %s\n out = %s",
				i, syntax.String(p), syntax.String(nf))
		}
	}
}

func TestNormalFormSemanticEquivalence(t *testing.T) {
	ch := equiv.NewChecker(nil)
	cfg := brand.Default()
	cfg.MaxDepth = 3
	cfg.MaxArity = -1 // the uniform-arity fragment of Table 8
	cfg.Names = []names.Name{"a", "b"}
	g := brand.New(616, cfg)
	nontrivial := 0
	for i := 0; i < 25; i++ {
		p := g.Term()
		nf, err := NormalForm(p)
		if err != nil {
			t.Fatalf("sample %d: %v", i, err)
		}
		if !IsNormalForm(nf) {
			t.Errorf("sample %d: result not normal: %s", i, syntax.String(nf))
			continue
		}
		if !syntax.Equal(p, nf) {
			nontrivial++
		}
		ok, err := ch.Congruence(p, nf, false)
		if err != nil {
			t.Fatalf("sample %d congruence: %v", i, err)
		}
		if !ok {
			t.Errorf("sample %d: NormalForm changed behaviour:\n in  = %s\n out = %s",
				i, syntax.String(p), syntax.String(nf))
		}
	}
	if nontrivial == 0 {
		t.Fatal("no nontrivial normalisations sampled")
	}
	t.Logf("%d nontrivial normalisations verified ~c", nontrivial)
}

func TestNormalFormBoundOutput(t *testing.T) {
	// νx āx.x̄ must survive as a bound-output prefix with its continuation
	// still under the ν.
	p := syntax.Restrict(syntax.Send(a, []names.Name{x}, syntax.SendN(x)), x)
	nf, err := NormalForm(p)
	if err != nil {
		t.Fatal(err)
	}
	r, ok := nf.(syntax.Res)
	if !ok {
		t.Fatalf("shape: %s", syntax.String(nf))
	}
	pre := r.Body.(syntax.Prefix)
	if out := pre.Pre.(syntax.Out); out.Ch != a || out.Args[0] != r.X {
		t.Fatalf("bound output mangled: %s", syntax.String(nf))
	}
}

func TestNormalFormRestrictionLaws(t *testing.T) {
	ch := equiv.NewChecker(nil)
	// RP2: νa āb.c̄ normalises to τ.c̄ (weakly visible as c̄).
	p := syntax.Restrict(syntax.Send(a, []names.Name{b}, syntax.SendN(c)), a)
	nf, err := NormalForm(p)
	if err != nil {
		t.Fatal(err)
	}
	want := syntax.TauP(syntax.SendN(c))
	res, err := ch.Labelled(nf, want, false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Related {
		t.Errorf("RP2 push: got %s", syntax.String(nf))
	}
	// RP3: νa a(x).p normalises to nil.
	q := syntax.Restrict(syntax.RecvN(a, x), a)
	nf, err = NormalForm(q)
	if err != nil {
		t.Fatal(err)
	}
	if !syntax.Equal(nf, syntax.PNil) {
		t.Errorf("RP3 push: got %s", syntax.String(nf))
	}
	// RM1: νa (a=b)c̄,d̄ normalises to d̄.
	m := syntax.Restrict(syntax.If(a, b, syntax.SendN(c), syntax.SendN(d)), a)
	nf, err = NormalForm(m)
	if err != nil {
		t.Fatal(err)
	}
	if !syntax.Equal(nf, syntax.SendN(d)) {
		t.Errorf("RM1 push: got %s", syntax.String(nf))
	}
}

func TestNormalFormRejectsRecursion(t *testing.T) {
	r := syntax.Rec{Id: "A", Params: nil, Body: syntax.TauP(syntax.Call{Id: "A"}), Args: nil}
	if _, err := NormalForm(r); err == nil {
		t.Fatal("recursion accepted")
	}
}

const d names.Name = "d"
