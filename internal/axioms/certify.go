package axioms

import (
	"bpi/internal/cert"
	"bpi/internal/names"
	"bpi/internal/syntax"
)

// axRecorder accumulates the proof object of one certified Decide call. The
// goal DAG is emitted in post-order: a goal's index is assigned when its
// decideWorld completes, so `last` always names the goal of the most recent
// finished comparison — exactly the child index a parent match step needs.
// Goals are shared across the DAG by the prover's memo key.
type axRecorder struct {
	goals []cert.Goal
	byKey map[string]int
	stack []*cert.Goal
	last  int
}

// curGoal returns the goal under construction, nil when not certifying.
func (pr *Prover) curGoal() *cert.Goal {
	if pr.rec == nil || len(pr.rec.stack) == 0 {
		return nil
	}
	return pr.rec.stack[len(pr.rec.stack)-1]
}

func (pr *Prover) recLast() int {
	if pr.rec == nil {
		return 0
	}
	return pr.rec.last
}

// finishCert stores the certificate of a completed Decide call (no-op when
// not certifying).
func (pr *Prover) finishCert(p, q syntax.Proc, related bool, worlds []cert.WorldStep) {
	if pr.rec == nil {
		return
	}
	pr.lastCert = &cert.Certificate{
		Version:  cert.Version,
		Relation: cert.RelAxioms,
		Related:  related,
		P:        syntax.String(p),
		Q:        syntax.String(q),
		Proof:    &cert.Proof{Worlds: worlds, Goals: pr.rec.goals},
	}
}

// Certificate returns the proof object recorded by the last Decide call, or
// nil if Certify was unset or the call erred.
func (pr *Prover) Certificate() *cert.Certificate { return pr.lastCert }

// summandLabel renders an output summand's canonical label, shared with the
// certificate verifier.
func summandLabel(s Summand) string {
	return cert.OutLabel(string(s.Ch), nameStrings(s.Objs), s.Bound, nameStrings(s.Binder))
}

func nameStrings(ns []names.Name) []string {
	if len(ns) == 0 {
		return nil
	}
	out := make([]string, len(ns))
	for i, n := range ns {
		out[i] = string(n)
	}
	return out
}

func repStrings(rep names.Subst) map[string]string {
	out := make(map[string]string, len(rep))
	for k, v := range rep {
		out[string(k)] = string(v)
	}
	return out
}
