package axioms

import (
	"testing"

	"bpi/internal/equiv"
	"bpi/internal/names"
	brand "bpi/internal/rand"
	"bpi/internal/syntax"
)

const (
	a names.Name = "a"
	b names.Name = "b"
	c names.Name = "c"
	x names.Name = "x"
)

// ---- Conditions and worlds ---------------------------------------------------

func TestCondEval(t *testing.T) {
	idWorld := names.Subst{}
	fused := names.Subst{a: a, b: a}
	cases := []struct {
		c    Cond
		eq   names.Subst
		want bool
	}{
		{True{}, idWorld, true},
		{Eq{a, a}, idWorld, true},
		{Eq{a, b}, idWorld, false},
		{Eq{a, b}, fused, true},
		{Neq(a, b), fused, false},
		{Conj(Eq{a, b}, Neq(a, c)), fused, true},
		{False(), idWorld, false},
	}
	for i, cs := range cases {
		if got := cs.c.Eval(cs.eq); got != cs.want {
			t.Errorf("case %d: %s under %v = %v", i, cs.c, cs.eq, got)
		}
	}
}

func TestWorldsBellNumbers(t *testing.T) {
	for _, cse := range []struct{ n, bell int }{{0, 1}, {1, 1}, {2, 2}, {3, 5}, {4, 15}} {
		v := names.NewSet()
		for i := 0; i < cse.n; i++ {
			v = v.Add(names.Name(string(rune('a' + i))))
		}
		if got := len(Worlds(v)); got != cse.bell {
			t.Errorf("Bell(%d) = %d, want %d", cse.n, got, cse.bell)
		}
	}
}

func TestWorldCondAgreesWithSubst(t *testing.T) {
	v := names.NewSet(a, b, c)
	for _, w := range Worlds(v) {
		if !w.Cond().Eval(w.Rep) {
			t.Errorf("world %s does not satisfy its own condition", w)
		}
		// And no other world satisfies it (completeness).
		for _, w2 := range Worlds(v) {
			if w2.String() != w.String() && w.Cond().Eval(w2.Rep) {
				t.Errorf("world %s satisfies the condition of %s", w2, w)
			}
		}
	}
}

func TestImplies(t *testing.T) {
	v := names.NewSet(a, b, c)
	if !Implies(Conj(Eq{a, b}, Eq{b, c}), Eq{a, c}, v) {
		t.Error("transitivity implication failed")
	}
	if Implies(Eq{a, b}, Eq{a, c}, v) {
		t.Error("bogus implication accepted")
	}
	if !Equivalent(Eq{a, b}, Eq{b, a}, v) {
		t.Error("symmetry equivalence failed")
	}
	if !Satisfiable(Eq{a, b}, v) || Satisfiable(False(), v) {
		t.Error("satisfiability wrong")
	}
}

func TestCondProcCompilation(t *testing.T) {
	ch := equiv.NewChecker(nil)
	p := syntax.SendN(c)
	// ¬(a=b) p behaves as p exactly when a≠b.
	m := CondProc(Neq(a, b), p)
	r, err := ch.Labelled(m, p, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r.Related {
		t.Error("¬(a=b)c̄ should behave as c̄ for distinct a,b")
	}
	fused := syntax.Apply(m, names.Single(b, a))
	r2, err := ch.Labelled(fused, syntax.PNil, false)
	if err != nil {
		t.Fatal(err)
	}
	if !r2.Related {
		t.Error("¬(a=a)c̄ should be inert")
	}
}

// ---- E8: soundness of every axiom (Theorem 6) -------------------------------

func TestE8AxiomSoundness(t *testing.T) {
	ch := equiv.NewChecker(nil)
	cfg := brand.Default()
	cfg.MaxDepth = 2
	cfg.Names = []names.Name{"a", "b"}
	g := brand.New(4242, cfg)
	for _, ax := range Catalogue() {
		checked := 0
		for trial := 0; trial < 12 && checked < 4; trial++ {
			m := Material{
				P: g.Term(), Q: g.Term(), R: g.Term(),
				A: a, B: b, C: c, X: x,
			}
			if trial%2 == 1 {
				m.B = a // also exercise fused name material
			}
			lhs, rhs, ok := ax.Inst(m)
			if !ok {
				continue
			}
			checked++
			got, err := ch.Congruence(lhs, rhs, false)
			if err != nil {
				t.Fatalf("%s: %v", ax.Name, err)
			}
			if !got {
				t.Errorf("%s: unsound instance\n lhs=%s\n rhs=%s",
					ax.Name, syntax.String(lhs), syntax.String(rhs))
			}
		}
		if checked == 0 {
			t.Errorf("%s: no applicable instances generated", ax.Name)
		}
	}
}

// ---- Expansion axiom (Table 8) ----------------------------------------------

func TestExpandSoundAndParFree(t *testing.T) {
	ch := equiv.NewChecker(nil)
	cfg := brand.Default()
	cfg.AllowPar = false
	cfg.AllowRestriction = false
	cfg.AllowMatch = false
	cfg.MaxDepth = 3
	cfg.MaxArity = -1 // the uniform-arity fragment where Table 8 applies
	g := brand.New(7, cfg)
	tried := 0
	for i := 0; i < 30 && tried < 10; i++ {
		p, q := g.Term(), g.Term()
		e, ok := Expand(p, q)
		if !ok {
			continue
		}
		tried++
		if hasPar(e) && !onlyUnderPrefix(e) {
			// Top-level parallels must be gone; nested ones under prefixes
			// remain (the axiom is applied once, not to a fixpoint).
			t.Errorf("expansion left a top-level parallel: %s", syntax.String(e))
		}
		got, err := ch.Congruence(syntax.Group(p, q), e, false)
		if err != nil {
			t.Fatalf("congruence: %v", err)
		}
		if !got {
			t.Errorf("expansion not ~c:\n p‖q = %s ‖ %s\n exp = %s",
				syntax.String(p), syntax.String(q), syntax.String(e))
		}
	}
	if tried == 0 {
		t.Fatal("no expansion instances generated")
	}
}

func hasPar(p syntax.Proc) bool {
	switch t := p.(type) {
	case syntax.Par:
		return true
	case syntax.Sum:
		return hasPar(t.L) || hasPar(t.R)
	default:
		return false
	}
}

func onlyUnderPrefix(syntax.Proc) bool { return true }

// ---- Head normal forms -------------------------------------------------------

func TestHNFRoundTrip(t *testing.T) {
	ch := equiv.NewChecker(nil)
	cfg := brand.Default()
	cfg.MaxDepth = 3
	cfg.Names = []names.Name{"a", "b"}
	g := brand.New(99, cfg)
	for i := 0; i < 12; i++ {
		p := g.Term()
		h, err := ComputeHNF(sharedSys, p, syntax.FreeNames(p))
		if err != nil {
			t.Fatalf("hnf(%s): %v", syntax.String(p), err)
		}
		back := h.ToProc()
		ok, err := ch.CongruenceBounded(p, back, false, 64)
		if err != nil {
			t.Fatalf("congruence: %v", err)
		}
		if !ok {
			t.Errorf("hnf round-trip not ~c:\n p   = %s\n hnf = %s",
				syntax.String(p), syntax.String(back))
		}
	}
}

func TestHNFOnRestriction(t *testing.T) {
	// νx āx.x̄b gives a bound-output summand.
	p := syntax.Restrict(syntax.Send(a, []names.Name{x}, syntax.SendN(x, b)), x)
	h, err := ComputeHNF(sharedSys, p, syntax.FreeNames(p))
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, ws := range h.ByWorld {
		for _, s := range ws {
			if s.Bound {
				found = true
			}
		}
	}
	if !found {
		t.Fatalf("no bound-output summand in hnf of %s", syntax.String(p))
	}
	if h.Depth() < 2 {
		t.Errorf("depth = %d", h.Depth())
	}
}

// ---- The prover: paper witnesses --------------------------------------------

func TestDecidePaperWitnesses(t *testing.T) {
	pr := NewProver(nil)
	must := func(p, q syntax.Proc, want bool, label string) {
		t.Helper()
		got, err := pr.Decide(p, q)
		if err != nil {
			t.Fatalf("%s: %v", label, err)
		}
		if got != want {
			t.Errorf("%s: Decide = %v, want %v\n p=%s\n q=%s", label, got, want,
				syntax.String(p), syntax.String(q))
		}
	}
	pp := syntax.Send(a, []names.Name{b}, syntax.RecvN(c, x))
	// Positive: S-laws.
	must(syntax.Choice(pp, pp), pp, true, "S2")
	must(syntax.Choice(pp, syntax.PNil), pp, true, "S1")
	must(syntax.Group(pp, syntax.PNil), pp, true, "P1")
	// Positive: axiom (H) instance.
	lhs := syntax.Send(a, nil, syntax.SendN(c))
	rhs := syntax.Send(a, nil, syntax.Choice(syntax.SendN(c), syntax.Recv(a, []names.Name{x}, syntax.SendN(c))))
	must(lhs, rhs, true, "H")
	// Negative: inputs on different channels are not congruent.
	must(syntax.RecvN(a), syntax.RecvN(b), false, "a vs b")
	// Negative: the expansion pair under fusion (Remark 3 / Remark 4).
	p := syntax.Choice(
		syntax.Recv(x, nil, syntax.Recv("y", nil, syntax.SendN(c))),
		syntax.Recv("y", nil, syntax.Group(syntax.RecvN(x), syntax.SendN(c))),
	)
	q := syntax.Group(syntax.RecvN(x), syntax.Recv("y", nil, syntax.SendN(c)))
	must(p, q, false, "expansion pair not ~c")
	// Positive: restriction laws — νa(āb.c̄) = τ.νa c̄ = τ.c̄.
	must(syntax.Restrict(syntax.Send(a, []names.Name{b}, syntax.SendN(c)), a),
		syntax.TauP(syntax.SendN(c)), true, "RP2")
	must(syntax.Restrict(syntax.RecvN(a, x), a), syntax.PNil, true, "RP3")
}

// ---- E9: agreement of the prover with the semantic congruence ---------------

func TestE9ProverAgreesWithSemantics(t *testing.T) {
	ch := equiv.NewChecker(nil)
	pr := NewProver(nil)
	cfg := brand.Default()
	cfg.MaxDepth = 3
	cfg.Names = []names.Name{"a", "b"}
	g := brand.New(20202, cfg)
	agree, pos := 0, 0
	for i := 0; i < 40; i++ {
		p := g.Term()
		q := g.Mutate(p)
		want, err := ch.Congruence(p, q, false)
		if err != nil {
			t.Fatalf("semantic congruence: %v", err)
		}
		got, err := pr.Decide(p, q)
		if err != nil {
			t.Fatalf("prover: %v", err)
		}
		if got != want {
			t.Errorf("pair %d: prover=%v semantics=%v\n p=%s\n q=%s",
				i, got, want, syntax.String(p), syntax.String(q))
			continue
		}
		agree++
		if want {
			pos++
		}
	}
	if pos == 0 {
		t.Error("no positive congruences sampled — generator mix broken")
	}
	t.Logf("agreement on %d pairs (%d positive)", agree, pos)
}
