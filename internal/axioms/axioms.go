package axioms

import (
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// semanticsSystem returns the shared empty-environment system used for
// side-condition checks on finite terms.
func semanticsSystem() *semantics.System { return sharedSys }

var sharedSys = semantics.NewSystem(nil)

// Axiom is one law of the system A (Tables 6 and 7) presented as an
// instance generator: given raw material (subterms and names), it produces
// a (lhs, rhs) pair that the law equates, or ok=false when the side
// conditions are not met. The E8 experiment validates every axiom's
// instances against the semantic congruence checker (Theorem 6, soundness).
type Axiom struct {
	Name string
	// Table is "A" (Table 6), "R" (Table 7) or "E" (Table 8).
	Table string
	// Inst builds an instance from the material.
	Inst func(m Material) (lhs, rhs syntax.Proc, ok bool)
}

// Material is the raw input for axiom instantiation.
type Material struct {
	P, Q, R syntax.Proc
	A, B, C names.Name
	X       names.Name // a name fresh for P (binder material)
}

// Catalogue returns the axiom system A: the laws of Table 6 (choice,
// conditions, the noisy axiom (H), and (SP)), the restriction laws of
// Table 7, and the parallel laws (P1 plus the expansion axiom, exposed
// separately via Expand).
func Catalogue() []Axiom {
	return []Axiom{
		{"S1: p+nil = p", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.Choice(m.P, syntax.PNil), m.P, true
		}},
		{"S2: p+p = p", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.Choice(m.P, m.P), m.P, true
		}},
		{"S3: p+q = q+p", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.Choice(m.P, m.Q), syntax.Choice(m.Q, m.P), true
		}},
		{"S4: (p+q)+r = p+(q+r)", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.Choice(syntax.Choice(m.P, m.Q), m.R), syntax.Choice(m.P, syntax.Choice(m.Q, m.R)), true
		}},
		{"C3: φ⇔ψ ⇒ φp = ψp", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			phi := Conj(Eq{m.A, m.B}, Eq{m.B, m.A})
			psi := Eq{m.A, m.B}
			return CondProc(phi, m.P), CondProc(psi, m.P), true
		}},
		{"C4: False p = False q", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return CondProc(False(), m.P), CondProc(False(), m.Q), true
		}},
		{"C5: φp,p = p", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.If(m.A, m.B, m.P, m.P), m.P, true
		}},
		{"C6: φp,q = ¬φ q,p", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.If(m.A, m.B, m.P, m.Q), CondProc2(Neq(m.A, m.B), m.Q, m.P), true
		}},
		{"SC1: φ(p1+p2),(q1+q2) = φp1,q1 + φp2,q2", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.If(m.A, m.B, syntax.Choice(m.P, m.Q), syntax.Choice(m.Q, m.R)),
				syntax.Choice(syntax.If(m.A, m.B, m.P, m.Q), syntax.If(m.A, m.B, m.Q, m.R)), true
		}},
		{"CP1: bn(α)∩n(φ)=∅ ⇒ φ(α.p) = φ(α.φp)", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			alphaP := syntax.Send(m.C, nil, m.P)
			alphaPhiP := syntax.Send(m.C, nil, CondProc(Eq{m.A, m.B}, m.P))
			return CondProc(Eq{m.A, m.B}, alphaP), CondProc(Eq{m.A, m.B}, alphaPhiP), true
		}},
		{"CP2: (x=y)α.p = (x=y)(α{x/y}).p", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			lhs := syntax.If(m.A, m.B, syntax.Send(m.B, []names.Name{m.C}, m.P), syntax.PNil)
			rhs := syntax.If(m.A, m.B, syntax.Send(m.A, []names.Name{m.C}, m.P), syntax.PNil)
			return lhs, rhs, true
		}},
		{"H: noisy saturation", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			// ā.p = ā.(p + a(x).p), requiring x ∉ fn(p) and p ⊣ a (p
			// discards a). The paper states (H) inside the conditional
			// system, where the ambient condition fixes which names are
			// distinct; the side condition p ⊣ a is only stable under the
			// fusions that keep a apart from every channel p could listen
			// on in SOME world (match conditions flip branches under
			// fusion, so this is headIns over both branches, not In(p)).
			// A bare instance is therefore sound for ~ but NOT for ~c: to
			// stay ~c-sound we emit the paper's conditional form, guarding
			// both sides with [a≠n] for each such channel n — fusions that
			// merge a with one of them collapse both sides to nil. Found
			// by the differential oracle (axioms/instances law).
			if syntax.FreeNames(m.P).Contains(m.X) {
				return nil, nil, false
			}
			heads, known := headIns(m.P)
			if !known || heads.Contains(m.A) {
				return nil, nil, false
			}
			lhs := syntax.Send(m.A, nil, m.P)
			rhs := syntax.Send(m.A, nil, syntax.Choice(m.P, syntax.Recv(m.A, []names.Name{m.X}, m.P)))
			for _, n := range heads.Sorted() {
				lhs = syntax.If(m.A, n, syntax.PNil, lhs)
				rhs = syntax.If(m.A, n, syntax.PNil, rhs)
			}
			return lhs, rhs, true
		}},
		{"SP: input selector", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			// a(x).p + a(x).q = a(x).p + a(x).q + a(x).((x=b)p,q).
			ax := m.X
			inP := syntax.Recv(m.A, []names.Name{ax}, m.P)
			inQ := syntax.Recv(m.A, []names.Name{ax}, m.Q)
			sel := syntax.Recv(m.A, []names.Name{ax}, syntax.If(ax, m.B, m.P, m.Q))
			return syntax.Choice(inP, inQ), syntax.Choice(inP, syntax.Choice(inQ, sel)), true
		}},
		{"P1: p‖nil = p", "A", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.Group(m.P, syntax.PNil), m.P, true
		}},
		{"R1: νxνyp = νyνxp", "R", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.Restrict(m.P, m.A, m.B), syntax.Restrict(m.P, m.B, m.A), m.A != m.B
		}},
		{"R2: νx(p+q) = νxp+νxq", "R", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.Restrict(syntax.Choice(m.P, m.Q), m.A),
				syntax.Choice(syntax.Restrict(m.P, m.A), syntax.Restrict(m.Q, m.A)), true
		}},
		{"R3: x∉n(α) ⇒ νx α.p = α.νx p", "R", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			if m.A == m.B || m.A == m.C {
				return nil, nil, false
			}
			return syntax.Restrict(syntax.Send(m.B, []names.Name{m.C}, m.P), m.A),
				syntax.Send(m.B, []names.Name{m.C}, syntax.Restrict(m.P, m.A)), true
		}},
		{"RP2: νx x̄y.p = τ.νx p", "R", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.Restrict(syntax.Send(m.A, []names.Name{m.B}, m.P), m.A),
				syntax.TauP(syntax.Restrict(m.P, m.A)), true
		}},
		{"RP3: νx x(y).p = nil", "R", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			return syntax.Restrict(syntax.Recv(m.A, []names.Name{m.X}, m.P), m.A), syntax.PNil, true
		}},
		{"RM1: x≠y ⇒ νx(x=y)p = nil", "R", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			if m.A == m.B {
				return nil, nil, false
			}
			// Soundness needs x restricted and p's behaviour guarded by x=y.
			return syntax.Restrict(syntax.If(m.A, m.B, m.P, syntax.PNil), m.A), syntax.PNil,
				!syntax.FreeNames(m.P).Contains(m.A)
		}},
		{"RM2: x∉{y,z} ⇒ νx(y=z)p = (y=z)νxp", "R", func(m Material) (syntax.Proc, syntax.Proc, bool) {
			if m.A == m.B || m.A == m.C {
				return nil, nil, false
			}
			return syntax.Restrict(syntax.If(m.B, m.C, m.P, syntax.PNil), m.A),
				syntax.If(m.B, m.C, syntax.Restrict(m.P, m.A), syntax.PNil), true
		}},
	}
}

// headIns over-approximates, across ALL worlds, the set of free channels p
// can listen on in head position: it walks the same structure as the
// discard relation (Table 2) but takes BOTH branches of every match (a
// fusion may flip the condition) and counts input prefixes whether or not
// a same-channel sibling blocks the joint reception (stuck mixed-arity
// parallels still fail to discard). known is false when p contains
// recursion or process calls, whose unfoldings we refuse to chase here.
//
// Soundness of the approximation: for every fusion σ of free names,
// pσ discards a whenever a ∉ σ(headIns(p)) — which is exactly the guard
// the conditional (H) instance needs.
func headIns(p syntax.Proc) (names.Set, bool) {
	switch t := p.(type) {
	case syntax.Nil:
		return nil, true
	case syntax.Prefix:
		if in, ok := t.Pre.(syntax.In); ok {
			return names.NewSet(in.Ch), true
		}
		return nil, true
	case syntax.Res:
		inner, known := headIns(t.Body)
		if !known {
			return nil, false
		}
		if inner.Contains(t.X) {
			inner = inner.Clone()
			inner.Remove(t.X)
		}
		return inner, true
	case syntax.Sum:
		return headIns2(t.L, t.R)
	case syntax.Par:
		return headIns2(t.L, t.R)
	case syntax.Match:
		return headIns2(t.Then, t.Else)
	default:
		return nil, false // Rec / Call: refuse rather than unfold
	}
}

func headIns2(l, r syntax.Proc) (names.Set, bool) {
	ls, ok := headIns(l)
	if !ok {
		return nil, false
	}
	rs, ok := headIns(r)
	if !ok {
		return nil, false
	}
	return ls.Union(rs), true
}

// Expand applies the expansion axiom (Table 8) to p‖q where both operands
// are sums of unconditioned prefixes (the common case after hnf): it
// returns the equivalent prefix-sum with the nine summand families of the
// table — joint inputs, output+reception (both orientations),
// output+discard, reception+discard, and the τ interleavings.
//
// Operands with conditions, restrictions or nested parallels should go
// through ComputeHNF first. Returns ok=false if an operand is not a sum of
// prefixes.
//
// Arity caveat: the paper states the axiomatisation for the monadic
// calculus. In a polyadic setting the [x∉T] guard conflates "not listening
// on x" with "listening on x at a different arity" (a process in the latter
// state blocks a broadcast instead of ignoring it), so Expand is sound only
// when all prefixes on a channel share one arity — e.g. the uniform-arity
// fragment. The prover (Decide) does not use this rewrite and has no such
// restriction.
func Expand(p, q syntax.Proc) (syntax.Proc, bool) {
	ps, ok := prefixSummands(p)
	if !ok {
		return nil, false
	}
	qs, ok := prefixSummands(q)
	if !ok {
		return nil, false
	}
	inChansP := inputChannelNames(ps)
	inChansQ := inputChannelNames(qs)
	var out []syntax.Proc
	// Joint inputs (first family): [x=y] x(v).(p'‖q'), for every pair of
	// inputs of equal arity — the equality guard covers substitutions that
	// fuse distinct channel names.
	for _, sa := range ps {
		ain, ok := sa.Pre.(syntax.In)
		if !ok {
			continue
		}
		for _, sb := range qs {
			bin, ok := sb.Pre.(syntax.In)
			if !ok || len(bin.Params) != len(ain.Params) {
				continue
			}
			avoid := syntax.FreeNames(sa.Cont).AddAll(syntax.FreeNames(sb.Cont)).
				AddSlice(ain.Params).AddSlice(bin.Params).Add(ain.Ch).Add(bin.Ch)
			params := make([]names.Name, len(ain.Params))
			for i := range params {
				params[i] = syntax.FreshVariant(ain.Params[i], avoid)
				avoid = avoid.Add(params[i])
			}
			bodyL := syntax.Instantiate(sa.Cont, ain.Params, params)
			bodyR := syntax.Instantiate(sb.Cont, bin.Params, params)
			out = append(out, CondProc(Eq{ain.Ch, bin.Ch},
				syntax.Recv(ain.Ch, params, syntax.Group(bodyL, bodyR))))
		}
	}
	// Output + reception and output + discard (second to fifth families).
	out = append(out, outputFamilies(ps, qs, inChansQ, false)...)
	out = append(out, outputFamilies(qs, ps, inChansP, true)...)
	// Reception + discard (sixth and seventh families).
	out = append(out, inputAlone(ps, qs, inChansQ, false)...)
	out = append(out, inputAlone(qs, ps, inChansP, true)...)
	// τ interleavings (eighth and ninth families).
	for _, sa := range ps {
		if _, ok := sa.Pre.(syntax.Tau); ok {
			out = append(out, syntax.TauP(syntax.Group(sa.Cont, q)))
		}
	}
	for _, sb := range qs {
		if _, ok := sb.Pre.(syntax.Tau); ok {
			out = append(out, syntax.TauP(syntax.Group(p, sb.Cont)))
		}
	}
	return syntax.Choice(out...), true
}

type prefixed struct {
	Pre  syntax.Pre
	Cont syntax.Proc
}

func prefixSummands(p syntax.Proc) ([]prefixed, bool) {
	switch t := p.(type) {
	case syntax.Nil:
		return nil, true
	case syntax.Prefix:
		return []prefixed{{t.Pre, t.Cont}}, true
	case syntax.Sum:
		l, ok := prefixSummands(t.L)
		if !ok {
			return nil, false
		}
		r, ok := prefixSummands(t.R)
		if !ok {
			return nil, false
		}
		return append(l, r...), true
	default:
		return nil, false
	}
}

// inputChannelNames returns the distinct channel names (T/S sets of
// Table 8) on which the summands listen, in sorted order.
func inputChannelNames(ps []prefixed) []names.Name {
	set := names.NewSet()
	for _, s := range ps {
		if in, ok := s.Pre.(syntax.In); ok {
			set = set.Add(in.Ch)
		}
	}
	return set.Sorted()
}

// notIn builds the Table 8 guard [x ∉ T]: the conjunction of x≠t for every
// listening channel t of the sibling.
func notIn(x names.Name, chans []names.Name) Cond {
	var parts []Cond
	for _, t := range chans {
		parts = append(parts, Neq(x, t))
	}
	return Conj(parts...)
}

// outputFamilies builds, for each output of movers, the summands where the
// sibling receives ([x=y]-guarded) or discards ([x∉T]-guarded).
func outputFamilies(movers, sib []prefixed, sibChans []names.Name, flip bool) []syntax.Proc {
	var out []syntax.Proc
	sibWhole := rebuildSum(sib)
	pair := func(m, s syntax.Proc) syntax.Proc {
		if flip {
			return syntax.Group(s, m)
		}
		return syntax.Group(m, s)
	}
	for _, mv := range movers {
		o, ok := mv.Pre.(syntax.Out)
		if !ok {
			continue
		}
		// Output + reception, guarded by channel equality.
		for _, s := range sib {
			in, ok := s.Pre.(syntax.In)
			if !ok || len(in.Params) != len(o.Args) {
				continue
			}
			recv := syntax.Instantiate(s.Cont, in.Params, o.Args)
			out = append(out, CondProc(Eq{o.Ch, in.Ch},
				syntax.Send(o.Ch, o.Args, pair(mv.Cont, recv))))
		}
		// Output + discard, guarded by [x ∉ T].
		out = append(out, CondProc(notIn(o.Ch, sibChans),
			syntax.Send(o.Ch, o.Args, pair(mv.Cont, sibWhole))))
	}
	return out
}

// inputAlone builds the reception+discard summands, guarded by [x ∉ T].
func inputAlone(movers, sib []prefixed, sibChans []names.Name, flip bool) []syntax.Proc {
	var out []syntax.Proc
	sibWhole := rebuildSum(sib)
	pair := func(m, s syntax.Proc) syntax.Proc {
		if flip {
			return syntax.Group(s, m)
		}
		return syntax.Group(m, s)
	}
	for _, mv := range movers {
		in, ok := mv.Pre.(syntax.In)
		if !ok {
			continue
		}
		// Rename binders away from the sibling's free names.
		params, cont := in.Params, mv.Cont
		sf := syntax.FreeNames(sibWhole)
		if sf.ContainsAny(params) {
			avoid := sf.Clone().AddAll(syntax.FreeNames(cont)).AddSlice(params)
			ren := names.Subst{}
			np := make([]names.Name, len(params))
			for i, bn := range params {
				if sf.Contains(bn) {
					np[i] = syntax.FreshVariant(bn, avoid)
					avoid = avoid.Add(np[i])
					ren[bn] = np[i]
				} else {
					np[i] = bn
				}
			}
			cont = syntax.Apply(cont, ren)
			params = np
		}
		out = append(out, CondProc(notIn(in.Ch, sibChans),
			syntax.Recv(in.Ch, params, pair(cont, sibWhole))))
	}
	return out
}

func rebuildSum(ps []prefixed) syntax.Proc {
	var parts []syntax.Proc
	for _, s := range ps {
		parts = append(parts, syntax.Prefix{Pre: s.Pre, Cont: s.Cont})
	}
	return syntax.Choice(parts...)
}
