package axioms

import (
	"fmt"
	"sort"
	"strings"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Summand is one head-normal-form summand φα.p (Definition 17): a prefix
// guarded by a complete condition. Bound outputs ā(νb) — produced when a
// restriction is pushed onto an output payload (§5.2) — carry the binder in
// Binder with Bound set; inputs carry their parameter in Binder.
type Summand struct {
	// Kind of the head prefix.
	Kind actions.Kind
	// Ch is the subject channel (empty for τ).
	Ch names.Name
	// Objs is the full payload tuple of an output, in transmission order
	// (bound names included; Binder lists which are bound).
	Objs []names.Name
	// Binder is the input parameter or the extruded bound-output name;
	// Bound tells which.
	Binder []names.Name
	// Bound marks a bound output ā(νb̃).
	Bound bool
	// Cont is the continuation.
	Cont syntax.Proc
}

// String renders the summand's prefix.
func (s Summand) String() string {
	switch s.Kind {
	case actions.Tau:
		return "tau." + syntax.String(s.Cont)
	case actions.In:
		return fmt.Sprintf("%s?(%s).%s", s.Ch, joinN(s.Binder), syntax.String(s.Cont))
	default:
		if s.Bound {
			return fmt.Sprintf("%s!(nu %s;%s).%s", s.Ch, joinN(s.Binder), joinN(s.Objs), syntax.String(s.Cont))
		}
		return fmt.Sprintf("%s!(%s).%s", s.Ch, joinN(s.Objs), syntax.String(s.Cont))
	}
}

func joinN(ns []names.Name) string {
	parts := make([]string, len(ns))
	for i, n := range ns {
		parts[i] = string(n)
	}
	return strings.Join(parts, ",")
}

// HNF is a head normal form on V: for every world (complete condition on V)
// the list of summands enabled in that world. The paper's
// Σᵢ φᵢαᵢ.pᵢ presentation is recovered by guarding each world's summands
// with the world's condition (ToProc).
type HNF struct {
	V      []names.Name
	Worlds []World
	// ByWorld[i] lists the summands enabled under Worlds[i].
	ByWorld [][]Summand
}

// ComputeHNF builds the head normal form of a finite process on
// V ⊇ fn(p). Per Lemma 16 this is A-provably equal to p; operationally each
// world's summand list is exactly the symbolic transition set of pσ_R,
// because the transition rules perform the same expansion (Table 8),
// restriction pushing (Table 7) and condition resolution (C-axioms) that
// the normalisation proof uses.
func ComputeHNF(sys *semantics.System, p syntax.Proc, v names.Set) (*HNF, error) {
	if !syntax.IsFinite(p) {
		return nil, fmt.Errorf("axioms: hnf requires a finite process, got %s", syntax.String(p))
	}
	u := v.Clone().AddAll(syntax.FreeNames(p))
	ws := Worlds(u)
	h := &HNF{V: u.Sorted(), Worlds: ws, ByWorld: make([][]Summand, len(ws))}
	for i, w := range ws {
		pw := syntax.Apply(p, w.Rep)
		ts, err := sys.Steps(pw)
		if err != nil {
			return nil, err
		}
		for _, t := range ts {
			h.ByWorld[i] = append(h.ByWorld[i], transToSummand(t))
		}
		sort.SliceStable(h.ByWorld[i], func(a, b int) bool {
			return h.ByWorld[i][a].String() < h.ByWorld[i][b].String()
		})
	}
	return h, nil
}

func transToSummand(t semantics.Trans) Summand {
	switch t.Act.Kind {
	case actions.Tau:
		return Summand{Kind: actions.Tau, Cont: t.Target}
	case actions.In:
		return Summand{Kind: actions.In, Ch: t.Act.Subj, Binder: t.Act.Objs, Cont: t.Target}
	default:
		if len(t.Act.Bound) > 0 {
			return Summand{Kind: actions.Out, Ch: t.Act.Subj, Objs: t.Act.Objs,
				Binder: t.Act.Bound, Bound: true, Cont: t.Target}
		}
		return Summand{Kind: actions.Out, Ch: t.Act.Subj, Objs: t.Act.Objs, Cont: t.Target}
	}
}

// ToProc rebuilds a core-syntax process from the head normal form:
// Σ_worlds Σ_summands φ_world α.p. Bound outputs are re-expressed with an
// explicit restriction ν b (āb̃.p), which is A-equal by Table 7.
func (h *HNF) ToProc() syntax.Proc {
	var parts []syntax.Proc
	for i, w := range h.Worlds {
		cond := w.Cond()
		for _, s := range h.ByWorld[i] {
			parts = append(parts, CondProc(cond, summandProc(s)))
		}
	}
	return syntax.Choice(parts...)
}

func summandProc(s Summand) syntax.Proc {
	switch s.Kind {
	case actions.Tau:
		return syntax.TauP(s.Cont)
	case actions.In:
		return syntax.Recv(s.Ch, s.Binder, s.Cont)
	default:
		out := syntax.Send(s.Ch, s.Objs, s.Cont)
		if s.Bound {
			return syntax.Restrict(out, s.Binder...)
		}
		return out
	}
}

// InputChannels returns the channels (with arities) on which world i listens.
func (h *HNF) InputChannels(i int) map[names.Name]map[int]bool {
	out := map[names.Name]map[int]bool{}
	for _, s := range h.ByWorld[i] {
		if s.Kind == actions.In {
			if out[s.Ch] == nil {
				out[s.Ch] = map[int]bool{}
			}
			out[s.Ch][len(s.Binder)] = true
		}
	}
	return out
}

// Depth returns the prefix depth of the original process as seen by the hnf
// (1 + max continuation depth), the induction measure of Theorem 7.
func (h *HNF) Depth() int {
	d := 0
	for _, ws := range h.ByWorld {
		for _, s := range ws {
			if cd := syntax.Depth(s.Cont) + 1; cd > d {
				d = cd
			}
		}
	}
	return d
}
