package axioms

import (
	"context"
	"fmt"

	"bpi/internal/actions"
	"bpi/internal/cert"
	"bpi/internal/names"
	"bpi/internal/obs"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Prover decides A ⊢ p = q for finite processes, following the structure of
// the completeness proof (Theorem 7):
//
//   - the top level quantifies over every complete condition on fn(p,q)
//     (world enumeration — the specialisation step of the proof, via
//     Lemma 19), and requires strict summand matching exactly as ~+ does:
//     equal discard sets, τ against τ, outputs against identical outputs,
//     inputs against inputs;
//   - continuation comparisons first *saturate* both sides with axiom (H),
//     adding inoffensive inputs a(z).p for every channel the opposite side
//     listens on but p discards — after saturation, strict matching
//     coincides with the noisy labelled bisimilarity ~ used in the
//     definition of ~+;
//   - input summands are matched per instantiation (names of the world plus
//     one fresh), with possibly different partners per instantiation —
//     this is the (SP) selector construction of the proof;
//   - bound outputs are matched up to a common fresh extruded name.
//
// The induction measure is the sum of the two depths, as in the paper; the
// prover memoises verified pairs and bounds recursion defensively. A Prover
// is NOT safe for concurrent use; create one per goroutine.
type Prover struct {
	Sys *semantics.System
	// MaxNames bounds |fn(p,q)| at the top level (world count is the Bell
	// number; default 5).
	MaxNames int
	// MaxSteps bounds the total number of pair comparisons (default 200000).
	MaxSteps int

	// Tracing records a human-readable outline of the derivation: world
	// specialisations, (H)-saturations, and (SP) input selections. Retrieve
	// with TraceLines; bounded to keep output manageable.
	Tracing bool

	// Obs, when non-nil, receives axioms.decide / axioms.world spans and
	// the counters axioms.worlds, axioms.compares, axioms.saturations and
	// axioms.memo_hits. The nil default is free (nil-safe no-ops).
	Obs *obs.Tracer

	// Certify records a replayable proof object (internal/cert) for every
	// Decide call; retrieve it with Certificate. Goals are keyed by the memo
	// entries of one call, so certifying provers reset the memo per Decide.
	Certify bool

	rec      *axRecorder
	lastCert *cert.Certificate

	memo  map[string]bool
	steps int
	trace []string
	ctx   context.Context // set per Decide/DecideCtx call

	// Counters resolved once per DecideCtx call (nil without a tracer).
	cCompares, cSaturations, cMemoHits *obs.Counter
}

// TraceLines returns the derivation outline recorded by the last Decide
// call (empty unless Tracing is set).
func (pr *Prover) TraceLines() []string { return pr.trace }

func (pr *Prover) tracef(format string, args ...interface{}) {
	if !pr.Tracing || len(pr.trace) >= 400 {
		return
	}
	pr.trace = append(pr.trace, fmt.Sprintf(format, args...))
}

// NewProver returns a prover over the given system.
func NewProver(sys *semantics.System) *Prover {
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	return &Prover{Sys: sys, memo: map[string]bool{}}
}

func (pr *Prover) maxNames() int {
	if pr.MaxNames <= 0 {
		return 5
	}
	return pr.MaxNames
}

func (pr *Prover) maxSteps() int {
	if pr.MaxSteps <= 0 {
		return 200000
	}
	return pr.MaxSteps
}

// Decide reports whether A ⊢ p = q (equivalently, by Theorems 6 and 7,
// whether p ~c q) for finite processes p, q.
func (pr *Prover) Decide(p, q syntax.Proc) (bool, error) {
	return pr.DecideCtx(context.Background(), p, q)
}

// DecideCtx is Decide honouring ctx: cancellation or deadline expiry aborts
// the derivation search (checked at every pair comparison) with an error
// wrapping ctx.Err().
func (pr *Prover) DecideCtx(ctx context.Context, p, q syntax.Proc) (bool, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	pr.ctx = ctx
	span := pr.Obs.Span("axioms.decide")
	defer span.End()
	pr.cCompares = pr.Obs.Counter("axioms.compares")
	pr.cSaturations = pr.Obs.Counter("axioms.saturations")
	pr.cMemoHits = pr.Obs.Counter("axioms.memo_hits")
	cWorlds := pr.Obs.Counter("axioms.worlds")
	if !syntax.IsFinite(p) || !syntax.IsFinite(q) {
		return false, fmt.Errorf("axioms: the axiomatisation covers finite processes only")
	}
	fn := syntax.FreeNames(p).AddAll(syntax.FreeNames(q))
	if fn.Len() > pr.maxNames() {
		return false, fmt.Errorf("axioms: %d free names exceed the world budget (%d)", fn.Len(), pr.maxNames())
	}
	pr.steps = 0
	pr.trace = pr.trace[:0]
	pr.lastCert = nil
	if pr.Certify {
		pr.memo = map[string]bool{}
		pr.rec = &axRecorder{byKey: map[string]int{}}
	} else {
		pr.rec = nil
	}
	var worlds []cert.WorldStep
	for _, w := range Worlds(fn) {
		pr.tracef("world %s: specialise both sides with σ=%s (Lemma 19)", w, w.Rep)
		cWorlds.Add(1)
		ws := span.Child("axioms.world")
		ok, err := pr.decideWorld(syntax.Apply(p, w.Rep), syntax.Apply(q, w.Rep), false)
		ws.End()
		if err != nil {
			return false, err
		}
		if !ok {
			pr.tracef("world %s: strict summand matching FAILED — not provable", w)
			// A refutation names exactly the failing world.
			pr.finishCert(p, q, false, []cert.WorldStep{{Rep: repStrings(w.Rep), Goal: pr.recLast()}})
			return false, nil
		}
		if pr.rec != nil {
			worlds = append(worlds, cert.WorldStep{Rep: repStrings(w.Rep), Goal: pr.rec.last})
		}
		pr.tracef("world %s: all summands matched", w)
	}
	pr.tracef("A ⊢ p = q by (C3)-recombination of the world instances")
	pr.finishCert(p, q, true, worlds)
	return true, nil
}

// decideWorld compares two world-specialised terms. With saturate unset the
// comparison is strict (the ~+ level: discard sets must already agree);
// with saturate set, missing input channels are completed with (H) before
// matching (the ~ level for continuations).
func (pr *Prover) decideWorld(p, q syntax.Proc, saturate bool) (bool, error) {
	pr.steps++
	pr.cCompares.Add(1)
	if pr.steps > pr.maxSteps() {
		return false, fmt.Errorf("axioms: prover step budget exhausted")
	}
	if pr.ctx != nil {
		if err := pr.ctx.Err(); err != nil {
			return false, fmt.Errorf("axioms: derivation canceled: %w", err)
		}
	}
	key := syntax.Key(p) + "\x00" + syntax.Key(q) + boolKey(saturate)
	if v, ok := pr.memo[key]; ok {
		pr.cMemoHits.Add(1)
		if pr.rec != nil {
			gi, recorded := pr.rec.byKey[key]
			if !recorded {
				// Only provisional entries lack a goal, and those are never
				// hit: the recursion measure strictly decreases.
				return false, fmt.Errorf("axioms: internal error: memo hit on an unrecorded goal")
			}
			pr.rec.last = gi
		}
		return v, nil
	}
	// Provisional positive entry guards against pathological re-entry; the
	// recursion strictly decreases the sum of depths, so genuine cycles
	// cannot occur on finite terms and the entry is always overwritten.
	pr.memo[key] = true
	if pr.rec != nil {
		pr.rec.stack = append(pr.rec.stack,
			&cert.Goal{P: syntax.String(p), Q: syntax.String(q), Saturate: saturate})
	}
	v, err := pr.decideWorld1(p, q, saturate)
	if pr.rec != nil {
		g := pr.rec.stack[len(pr.rec.stack)-1]
		pr.rec.stack = pr.rec.stack[:len(pr.rec.stack)-1]
		if err == nil {
			g.Proved = v
			pr.rec.goals = append(pr.rec.goals, *g)
			pr.rec.byKey[key] = len(pr.rec.goals) - 1
			pr.rec.last = len(pr.rec.goals) - 1
		}
	}
	if err != nil {
		delete(pr.memo, key)
		return false, err
	}
	pr.memo[key] = v
	return v, nil
}

func boolKey(b bool) string {
	if b {
		return "\x01"
	}
	return "\x00"
}

// summandSets computes the (τ, output, input) summand lists of a term,
// with bound outputs canonicalised against avoid.
func (pr *Prover) summandSets(p syntax.Proc, avoid names.Set) (taus []Summand, outs []Summand, ins []Summand, err error) {
	ts, err := pr.Sys.Steps(p)
	if err != nil {
		return nil, nil, nil, err
	}
	for _, t := range ts {
		switch t.Act.Kind {
		case actions.Tau:
			taus = append(taus, transToSummand(t))
		case actions.In:
			ins = append(ins, transToSummand(t))
		default:
			if len(t.Act.Bound) > 0 {
				t = canonBound(t, avoid)
			}
			outs = append(outs, transToSummand(t))
		}
	}
	return taus, outs, ins, nil
}

// canonBound renames the extruded names of one bound output against avoid,
// deterministically (both sides of a comparison use the same avoid set).
func canonBound(t semantics.Trans, avoid names.Set) semantics.Trans {
	av := avoid.Clone().AddAll(t.Act.FreeNames())
	ren := names.Subst{}
	for _, b := range t.Act.Bound {
		nb := syntax.FreshVariant("e", av)
		av = av.Add(nb)
		ren[b] = nb
	}
	return semantics.Trans{Act: t.Act.RenameAll(ren), Target: syntax.Apply(t.Target, ren)}
}

func (pr *Prover) decideWorld1(p, q syntax.Proc, saturate bool) (bool, error) {
	g := pr.curGoal()
	fn := syntax.FreeNames(p).AddAll(syntax.FreeNames(q))
	pT, pO, pI, err := pr.summandSets(p, fn)
	if err != nil {
		return false, err
	}
	qT, qO, qI, err := pr.summandSets(q, fn)
	if err != nil {
		return false, err
	}

	// Input channel/arity comparison (the discard sets over fn).
	pShapes, qShapes := shapesOf(pI), shapesOf(qI)
	if !saturate {
		if !shapeEq(pShapes, qShapes) {
			if g != nil {
				g.FailKind = "shapes"
			}
			return false, nil
		}
		// Input shapes alone do not determine the discard relation: a
		// mixed-arity parallel of listeners on the same channel (b? | b?(x))
		// neither receives on b (rule 12 needs equal arities) nor discards it
		// (rule 9 needs both components to), so it has no input summand on b
		// yet is NOT ~+ to 0, whose discard b: must be answered. Compare the
		// actual discard sets over fn, exactly as Definition 11's discard
		// clause does.
		for _, a := range fn.Sorted() {
			dp, err := pr.Sys.Discards(p, a)
			if err != nil {
				return false, err
			}
			dq, err := pr.Sys.Discards(q, a)
			if err != nil {
				return false, err
			}
			if dp != dq {
				pr.tracef("  discard sets differ on %s (left discards=%v, right=%v)", a, dp, dq)
				if g != nil {
					g.FailKind, g.FailName = "discards", string(a)
				}
				return false, nil
			}
		}
	} else {
		// (H) saturation: add inoffensive inputs for the channels only the
		// other side listens on. The binder is fresh for the continuation,
		// which is the whole term — exactly ā.p = ā.(p + φa(z).p).
		satP, err := pr.saturations(p, pShapes, qShapes, fn)
		if err != nil {
			return false, err
		}
		satQ, err := pr.saturations(q, qShapes, pShapes, fn)
		if err != nil {
			return false, err
		}
		for _, ssum := range satP {
			pr.tracef("  (H): saturate left with %s?(…) (inoffensive input)", ssum.Ch)
		}
		for _, ssum := range satQ {
			pr.tracef("  (H): saturate right with %s?(…) (inoffensive input)", ssum.Ch)
		}
		pI = append(pI, satP...)
		qI = append(qI, satQ...)
		pShapes, qShapes = shapesOf(pI), shapesOf(qI)
		if !shapeEq(pShapes, qShapes) {
			if g != nil {
				g.FailKind = "sat-shapes"
			}
			return false, nil
		}
	}

	// τ and output summands: strict mutual matching with saturated
	// continuations. A successful match records the chosen partner and
	// subgoal; an unmatched mover records the refutation of every candidate
	// (the search tried them all before failing).
	matchAll := func(side, kind string, movers, others []Summand, pred func(a, b Summand) bool) (bool, error) {
		for _, s := range movers {
			var tried []cert.RefuteStep
			seen := map[string]bool{}
			matched := false
			for _, r := range others {
				if !pred(s, r) {
					continue
				}
				ok, err := pr.decideWorld(s.Cont, r.Cont, true)
				if err != nil {
					return false, err
				}
				if ok {
					if g != nil {
						st := cert.MatchStep{Side: side, Cont: syntax.String(s.Cont),
							Partner: syntax.String(r.Cont), Next: pr.rec.last}
						if kind == "out" {
							st.Label = summandLabel(s)
							g.Outs = append(g.Outs, st)
						} else {
							g.Taus = append(g.Taus, st)
						}
					}
					matched = true
					break
				}
				if g != nil {
					pc := syntax.String(r.Cont)
					if !seen[pc] {
						seen[pc] = true
						tried = append(tried, cert.RefuteStep{Partner: pc, Next: pr.rec.last})
					}
				}
			}
			if !matched {
				if g != nil {
					g.FailKind, g.FailSide, g.FailCont = kind, side, syntax.String(s.Cont)
					if kind == "out" {
						g.FailLabel = summandLabel(s)
					}
					g.Refutes = tried
				}
				return false, nil
			}
		}
		return true, nil
	}
	tauPred := func(a, b Summand) bool { return true }
	// Outputs match on identical labels (bound outputs already share
	// canonical extruded names because both sides used the same avoid set).
	outPred := func(a, b Summand) bool {
		return a.Ch == b.Ch && a.Bound == b.Bound && namesEq(a.Objs, b.Objs) && namesEq(a.Binder, b.Binder)
	}
	for _, dir := range [2]struct {
		side           string
		movers, others []Summand
	}{{"left", pT, qT}, {"right", qT, pT}} {
		ok, err := matchAll(dir.side, "tau", dir.movers, dir.others, tauPred)
		if err != nil || !ok {
			return false, err
		}
	}
	for _, dir := range [2]struct {
		side           string
		movers, others []Summand
	}{{"left", pO, qO}, {"right", qO, pO}} {
		ok, err := matchAll(dir.side, "out", dir.movers, dir.others, outPred)
		if err != nil || !ok {
			return false, err
		}
	}

	// Input summands: per-instantiation matching (the (SP) selector). For
	// every input of one side and every payload over fn plus fresh names,
	// some input of the other side at the same channel/arity must have an
	// A-equal instantiated continuation.
	if ok, err := pr.matchInputs("left", pI, qI, fn); err != nil || !ok {
		return false, err
	}
	return pr.matchInputs("right", qI, pI, fn)
}

// saturations builds the (H) summands added to p: one input a(z̃).p per
// (channel, arity) the other side listens on and p discards. The discard
// check is the real Table 2 relation, not absence of the (channel, arity)
// shape: a term listening on a at another arity — or stuck on a — does not
// discard a, and axiom (H) gives no right to saturate it (a?() vs a?(x)
// must stay distinguishable; found by the differential oracle).
func (pr *Prover) saturations(p syntax.Proc, own, other map[shapeKey]bool, fn names.Set) ([]Summand, error) {
	var out []Summand
	for sh := range other {
		if own[sh] {
			continue
		}
		disc, err := pr.Sys.Discards(p, sh.ch)
		if err != nil {
			return nil, err
		}
		if !disc {
			continue
		}
		binder := make([]names.Name, sh.arity)
		avoid := fn.Clone()
		for i := range binder {
			binder[i] = syntax.FreshVariant("z", avoid)
			avoid = avoid.Add(binder[i])
		}
		out = append(out, Summand{Kind: actions.In, Ch: sh.ch, Binder: binder, Cont: p})
		pr.cSaturations.Add(1)
	}
	return out, nil
}

type shapeKey struct {
	ch    names.Name
	arity int
}

func shapesOf(ins []Summand) map[shapeKey]bool {
	out := map[shapeKey]bool{}
	for _, s := range ins {
		out[shapeKey{s.Ch, len(s.Binder)}] = true
	}
	return out
}

func shapeEq(a, b map[shapeKey]bool) bool {
	if len(a) != len(b) {
		return false
	}
	for k := range a {
		if !b[k] {
			return false
		}
	}
	return true
}

// matchInputs checks that every instantiation of every input summand of ls
// is matched by some input summand of rs. side names the mover side in the
// recorded proof steps.
func (pr *Prover) matchInputs(side string, ls, rs []Summand, fn names.Set) (bool, error) {
	g := pr.curGoal()
	for _, l := range ls {
		// Instantiation universe: the shared free names plus enough fresh
		// names to realise every equality pattern among the parameters.
		univ := fn.Sorted()
		avoid := fn.Clone()
		for i := 0; i < len(l.Binder); i++ {
			w := syntax.FreshVariant("w", avoid)
			avoid = avoid.Add(w)
			univ = append(univ, w)
		}
		payloads := enumTuples(univ, len(l.Binder))
		for _, payload := range payloads {
			lc := syntax.Instantiate(l.Cont, l.Binder, payload)
			var tried []cert.RefuteStep
			seen := map[string]bool{}
			found := false
			for _, r := range rs {
				if r.Ch != l.Ch || len(r.Binder) != len(l.Binder) {
					continue
				}
				rc := syntax.Instantiate(r.Cont, r.Binder, payload)
				ok, err := pr.decideWorld(lc, rc, true)
				if err != nil {
					return false, err
				}
				if ok {
					if g != nil {
						g.Ins = append(g.Ins, cert.InStep{Side: side, Ch: string(l.Ch),
							Payload: nameStrings(payload), Cont: syntax.String(lc),
							Partner: syntax.String(rc), Next: pr.rec.last})
					}
					found = true
					break
				}
				if g != nil {
					pc := syntax.String(rc)
					if !seen[pc] {
						seen[pc] = true
						tried = append(tried, cert.RefuteStep{Partner: pc, Next: pr.rec.last})
					}
				}
			}
			if !found {
				if g != nil {
					g.FailKind, g.FailSide = "in", side
					g.FailName, g.FailPayload = string(l.Ch), nameStrings(payload)
					g.FailCont = syntax.String(lc)
					g.Refutes = tried
				}
				return false, nil
			}
		}
	}
	return true, nil
}

func enumTuples(u []names.Name, k int) [][]names.Name {
	if k == 0 {
		return [][]names.Name{nil}
	}
	rest := enumTuples(u, k-1)
	out := make([][]names.Name, 0, len(rest)*len(u))
	for _, n := range u {
		for _, t := range rest {
			tt := append([]names.Name{n}, t...)
			out = append(out, tt)
		}
	}
	return out
}

func namesEq(a, b []names.Name) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
