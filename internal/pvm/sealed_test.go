package pvm

import "testing"

// Instr is sealed: exactly the seven PVM-style primitives of Example 3.
func TestInstrSealed(t *testing.T) {
	instrs := []Instr{Send{}, Bcast{}, Receive{}, NewGroup{}, Join{}, Leave{}, Spawn{}}
	if len(instrs) != 7 {
		t.Fatalf("%d instruction types, want 7", len(instrs))
	}
	for _, i := range instrs {
		i.isInstr()
	}
}
