// Package pvm implements Example 3 of the paper: a small PVM-like surface
// language of tasks with asynchronous point-to-point and dynamic group
// communication, compiled into the bπ-calculus exactly along the paper's
// encoding:
//
//   - every task at address a runs beside a mailbox Pool(a,r,k) that
//     captures every message broadcast to a and stores it in a Cell;
//   - x = receive() broadcasts a fresh request token on the task's private
//     buffer channel r; every Cell hears it and the race is resolved by the
//     broadcast itself — the first Cell to answer on the token channel is
//     heard both by the requester (which gets the value) and by the other
//     cells (which therefore keep their values);
//   - groups are channels: joingroup(g) spawns another Pool listening on g
//     with the same buffer r, so group broadcasts land in the member's own
//     mailbox; leavegroup(g) kills that pool via its private kill channel;
//     newgroup() is ν-creation of a group channel;
//   - spawn starts a sibling task at a fresh address.
//
// The encoding uses the full expressive power the paper advertises:
// reconfigurable dynamic groups via name generation, mobility (group names
// travel in messages) and broadcast as the only primitive.
package pvm

import (
	"fmt"

	"bpi/internal/names"
	"bpi/internal/syntax"
)

// Instr is one surface instruction.
type Instr interface{ isInstr() }

// Send transmits Msg to the task address To (asynchronous, buffered at the
// receiver).
type Send struct{ To, Msg names.Name }

// Bcast transmits Msg to every current member of group Group.
type Bcast struct{ Group, Msg names.Name }

// Receive takes the next buffered message into Var (binding it for the rest
// of the task).
type Receive struct{ Var names.Name }

// NewGroup creates a fresh group and binds its name to Var.
type NewGroup struct{ Var names.Name }

// Join adds this task to group Group.
type Join struct{ Group names.Name }

// Leave removes this task from group Group (it must currently be a member,
// joined under exactly that name).
type Leave struct{ Group names.Name }

// Spawn starts Body as a new task at a fresh address bound to Var.
type Spawn struct {
	Var  names.Name
	Body *Task
}

func (Send) isInstr()     {}
func (Bcast) isInstr()    {}
func (Receive) isInstr()  {}
func (NewGroup) isInstr() {}
func (Join) isInstr()     {}
func (Leave) isInstr()    {}
func (Spawn) isInstr()    {}

// Task is a finite sequence of instructions (the paper's P ::= I;P | STOP).
type Task struct{ Instrs []Instr }

// Env returns the definitions environment shared by every compiled task:
// the mailbox Pool and the value Cell.
//
//	Pool(a,r,k) = k() + a(x).(Pool(a,r,k) ‖ Cell(r,x))
//	Cell(r,x)   = r(c).(c̄x + c(y).Cell(r,x))
func Env() syntax.Env {
	a, r, k := names.Name("a"), names.Name("r"), names.Name("k")
	x, c, y := names.Name("x"), names.Name("c"), names.Name("y")
	env := syntax.Env{}
	env = env.Define("Pool", []names.Name{a, r, k},
		syntax.Choice(
			syntax.RecvN(k),
			syntax.Recv(a, []names.Name{x},
				syntax.Group(
					syntax.Call{Id: "Pool", Args: []names.Name{a, r, k}},
					syntax.Call{Id: "Cell", Args: []names.Name{r, x}},
				)),
		))
	env = env.Define("Cell", []names.Name{r, x},
		syntax.Recv(r, []names.Name{c},
			syntax.Choice(
				syntax.SendN(c, x),
				syntax.Recv(c, []names.Name{y},
					syntax.Call{Id: "Cell", Args: []names.Name{r, x}}),
			)))
	return env
}

// Compile translates a task to run at the given address: νr νk
// (Pool(addr,r,k) ‖ ⟦body⟧). Group membership is tracked statically by the
// group's name in scope, as the paper's M set does.
//
// Receives use the paper's literal one-shot request νt(r̄t ‖ t(x).⟦P⟧). The
// request is itself a broadcast, so if it fires before any message has been
// buffered it is lost and the receive blocks forever — a genuine race of
// the paper's encoding ("no guarantee in what concerns the order of
// messages' arrival"). Exhaustive may-analyses (CanReachBarb) are unaffected;
// for scheduled executions use CompileReliable.
func Compile(task *Task, addr names.Name) (syntax.Proc, error) {
	c := &compiler{}
	return c.task(task, addr)
}

// CompileReliable is Compile with retrying receives:
//
//	rec Req. νt ( r̄t ‖ ( t(x).⟦P⟧ + t̄t.Req ) )
//
// Firing the abort output resolves the choice and simultaneously notifies
// any cell committed to this token (its c(y) branch restores the stored
// value), so no message is lost and the request is re-issued until a cell
// answers. The retry cycles enlarge the state space considerably — prefer
// Compile for exhaustive exploration and CompileReliable for scheduled or
// Monte-Carlo runs. Recorded in DESIGN.md as a deviation from the paper's
// literal term.
func CompileReliable(task *Task, addr names.Name) (syntax.Proc, error) {
	c := &compiler{reliable: true}
	return c.task(task, addr)
}

type compiler struct {
	counter  int
	reliable bool
}

func (c *compiler) fresh(base string) names.Name {
	c.counter++
	return names.Name(fmt.Sprintf("%s%s%d", base, names.FreshMarker, c.counter))
}

func (c *compiler) recId() string {
	c.counter++
	return fmt.Sprintf("Req%d", c.counter)
}

func (c *compiler) task(task *Task, addr names.Name) (syntax.Proc, error) {
	r := c.fresh("r")
	k := c.fresh("k")
	body, err := c.seq(task.Instrs, addr, r, map[names.Name]names.Name{addr: k})
	if err != nil {
		return nil, err
	}
	return syntax.Restrict(
		syntax.Group(
			syntax.Call{Id: "Pool", Args: []names.Name{addr, r, k}},
			body,
		), r, k), nil
}

// seq compiles an instruction sequence; members maps a joined group (or the
// own address) to its pool's kill channel.
func (c *compiler) seq(instrs []Instr, addr, r names.Name, members map[names.Name]names.Name) (syntax.Proc, error) {
	if len(instrs) == 0 {
		// STOP: kill every remaining pool (the paper's k̄g1…k̄gn.τ.nil); the
		// own pool dies too, releasing its address.
		var stop syntax.Proc = syntax.TauP(syntax.PNil)
		for _, g := range sortedKeys(members) {
			stop = syntax.Send(members[g], nil, stop)
		}
		return stop, nil
	}
	rest := instrs[1:]
	switch in := instrs[0].(type) {
	case Send:
		cont, err := c.seq(rest, addr, r, members)
		if err != nil {
			return nil, err
		}
		return syntax.Send(in.To, []names.Name{in.Msg}, cont), nil
	case Bcast:
		cont, err := c.seq(rest, addr, r, members)
		if err != nil {
			return nil, err
		}
		return syntax.Send(in.Group, []names.Name{in.Msg}, cont), nil
	case Receive:
		cont, err := c.seq(rest, addr, r, members)
		if err != nil {
			return nil, err
		}
		t := c.fresh("t")
		if !c.reliable {
			// The paper's literal one-shot request: νt(r̄t ‖ t(x).⟦P⟧).
			return syntax.Restrict(
				syntax.Group(
					syntax.SendN(r, t),
					syntax.Recv(t, []names.Name{in.Var}, cont),
				), t), nil
		}
		// Reliable mode: abort-and-retry (see CompileReliable).
		id := c.recId()
		params := syntax.FreeNames(cont).Add(r)
		params.Remove(in.Var)
		fns := params.Sorted()
		body := syntax.Restrict(
			syntax.Group(
				syntax.SendN(r, t),
				syntax.Choice(
					syntax.Recv(t, []names.Name{in.Var}, cont),
					syntax.Send(t, []names.Name{t}, syntax.Call{Id: id, Args: fns}),
				),
			), t)
		return syntax.Rec{Id: id, Params: fns, Body: body, Args: fns}, nil
	case NewGroup:
		kg := c.fresh("k")
		m2 := cloneMembers(members)
		m2[in.Var] = kg
		cont, err := c.seq(rest, addr, r, m2)
		if err != nil {
			return nil, err
		}
		// νg νkg ( Pool(g,r,kg) ‖ ⟦P⟧ ): the creator is a member.
		return syntax.Restrict(
			syntax.Group(
				syntax.Call{Id: "Pool", Args: []names.Name{in.Var, r, kg}},
				cont,
			), in.Var, kg), nil
	case Join:
		kg := c.fresh("k")
		m2 := cloneMembers(members)
		m2[in.Group] = kg
		cont, err := c.seq(rest, addr, r, m2)
		if err != nil {
			return nil, err
		}
		return syntax.Restrict(
			syntax.Group(
				syntax.Call{Id: "Pool", Args: []names.Name{in.Group, r, kg}},
				cont,
			), kg), nil
	case Leave:
		kg, ok := members[in.Group]
		if !ok {
			return nil, fmt.Errorf("pvm: leavegroup(%s) without a matching join", in.Group)
		}
		m2 := cloneMembers(members)
		delete(m2, in.Group)
		cont, err := c.seq(rest, addr, r, m2)
		if err != nil {
			return nil, err
		}
		return syntax.Send(kg, nil, cont), nil
	case Spawn:
		child, err := c.task(in.Body, in.Var)
		if err != nil {
			return nil, err
		}
		cont, err := c.seq(rest, addr, r, members)
		if err != nil {
			return nil, err
		}
		// νa' ( {Q}_a' ‖ ⟦P⟧ ): the child's fresh address is in scope as Var.
		return syntax.Restrict(syntax.Group(child, cont), in.Var), nil
	}
	panic("pvm: unknown instruction")
}

func cloneMembers(m map[names.Name]names.Name) map[names.Name]names.Name {
	out := make(map[names.Name]names.Name, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func sortedKeys(m map[names.Name]names.Name) []names.Name {
	s := names.NewSet()
	for k := range m {
		s = s.Add(k)
	}
	return s.Sorted()
}

// System composes compiled root tasks at the given addresses (addresses are
// free names, so external observers can send to them).
func System(tasks map[names.Name]*Task) (syntax.Proc, error) {
	c := &compiler{}
	var parts []syntax.Proc
	s := names.NewSet()
	for addr := range tasks {
		s = s.Add(addr)
	}
	for _, addr := range s.Sorted() {
		p, err := c.task(tasks[addr], addr)
		if err != nil {
			return nil, err
		}
		parts = append(parts, p)
	}
	return syntax.Group(parts...), nil
}
