package pvm

import (
	"testing"

	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

const (
	rootA names.Name = "root"
	peerA names.Name = "peer"
	obs1  names.Name = "out1"
	obs2  names.Name = "out2"
	probe names.Name = "probe"
	msg   names.Name = "msg"
	ack   names.Name = "ok"
)

func sys() *semantics.System { return semantics.NewSystem(Env()) }

func reach(t *testing.T, p syntax.Proc, watch names.Name, budget int) bool {
	t.Helper()
	got, err := machine.CanReachBarb(sys(), p, watch, budget)
	if err != nil {
		t.Fatalf("CanReachBarb(%s): %v", watch, err)
	}
	return got
}

func TestEnvValidates(t *testing.T) {
	if err := Env().Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestSendReceive(t *testing.T) {
	// root sends msg to peer; peer receives it and reveals it on out1.
	tasks := map[names.Name]*Task{
		rootA: {Instrs: []Instr{Send{peerA, msg}}},
		peerA: {Instrs: []Instr{Receive{"x"}, Send{obs1, "x"}}},
	}
	p, err := System(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reach(t, p, obs1, 50000) {
		t.Error("message never delivered")
	}
}

func TestReceiveBlocksWhenEmpty(t *testing.T) {
	tasks := map[names.Name]*Task{
		peerA: {Instrs: []Instr{Receive{"x"}, Send{obs1, "x"}}},
	}
	p, err := System(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if reach(t, p, obs1, 50000) {
		t.Error("receive on an empty mailbox completed")
	}
}

func TestSendIsPointToPoint(t *testing.T) {
	// A message to peer must not be observable by another task's receive.
	tasks := map[names.Name]*Task{
		rootA:   {Instrs: []Instr{Send{peerA, msg}}},
		peerA:   {Instrs: []Instr{Receive{"x"}, Send{obs1, "x"}}},
		"other": {Instrs: []Instr{Receive{"y"}, Send{obs2, "y"}}},
	}
	p, err := System(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reach(t, p, obs1, 80000) {
		t.Error("addressee missed the message")
	}
	if reach(t, p, obs2, 80000) {
		t.Error("non-addressee observed a point-to-point message")
	}
}

func TestTwoMessagesBothReceived(t *testing.T) {
	// Two buffered messages are delivered by two receives (in some order);
	// the peer echoes both on obs1/obs2.
	tasks := map[names.Name]*Task{
		rootA: {Instrs: []Instr{Send{peerA, "m1"}, Send{peerA, "m2"}}},
		peerA: {Instrs: []Instr{Receive{"x"}, Receive{"y"}, Send{obs1, "x"}, Send{obs2, "y"}}},
	}
	p, err := System(tasks)
	if err != nil {
		t.Fatal(err)
	}
	if !reach(t, p, obs1, 120000) || !reach(t, p, obs2, 120000) {
		t.Error("cell race lost a message")
	}
}

func TestGroupBroadcastReachesAllMembers(t *testing.T) {
	// root creates a group, tells both children its name, then bcasts; each
	// member reveals what it got.
	child := func(out names.Name) *Task {
		return &Task{Instrs: []Instr{
			Receive{"g"},     // learn the group name (mobility!)
			Join{"g"},        // dynamically join
			Send{rootA, ack}, // ready
			Receive{"v"},     // the group broadcast
			Send{out, "v"},
		}}
	}
	root := &Task{Instrs: []Instr{
		NewGroup{"g"},
		Spawn{"c1", child(obs1)},
		Spawn{"c2", child(obs2)},
		Send{"c1", "g"},
		Send{"c2", "g"},
		Receive{"a1"}, // both ready
		Receive{"a2"},
		Bcast{"g", msg},
	}}
	p, err := Compile(root, rootA)
	if err != nil {
		t.Fatal(err)
	}
	if !reach(t, p, obs1, 400000) {
		t.Error("member 1 missed the group broadcast")
	}
	if !reach(t, p, obs2, 400000) {
		t.Error("member 2 missed the group broadcast")
	}
}

func TestLeaveGroupStopsDelivery(t *testing.T) {
	// The child joins, leaves, acks; only then does root broadcast. The
	// departed member must never observe it.
	child := &Task{Instrs: []Instr{
		Receive{"g"},
		Join{"g"},
		Leave{"g"},
		Send{rootA, ack},
		Receive{"v"}, // would only fire if the bcast still reached us
		Send{obs1, "v"},
	}}
	root := &Task{Instrs: []Instr{
		NewGroup{"g"},
		Spawn{"c1", child},
		Send{"c1", "g"},
		Receive{"a1"},
		Bcast{"g", msg},
		Send{probe, ack},
	}}
	p, err := Compile(root, rootA)
	if err != nil {
		t.Fatal(err)
	}
	if !reach(t, p, probe, 400000) {
		t.Error("root never completed the protocol")
	}
	if reach(t, p, obs1, 400000) {
		t.Error("departed member still received the group broadcast")
	}
}

func TestLeaveWithoutJoinRejected(t *testing.T) {
	_, err := Compile(&Task{Instrs: []Instr{Leave{"g"}}}, rootA)
	if err == nil {
		t.Fatal("leave without join accepted")
	}
}

// Reliable mode: a randomly scheduled run actually delivers, because lost
// receive requests are retried.
func TestReliableReceiveDelivers(t *testing.T) {
	tasks := &Task{Instrs: []Instr{
		Spawn{"p", &Task{Instrs: []Instr{Receive{"x"}, Send{obs1, "x"}}}},
		Send{"p", msg},
	}}
	p, err := CompileReliable(tasks, rootA)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := machine.RunMany(sys(), p, 12, 5, machine.Options{
		MaxSteps:   250,
		StopOnBarb: []names.Name{obs1},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := machine.Summarise(rs)
	if st.Stopped == 0 {
		t.Fatalf("reliable receive never delivered: %v", st)
	}
}

// The faithful one-shot receive can genuinely lose its request (the paper's
// race): some schedule quiesces without delivering.
func TestFaithfulReceiveRaceExists(t *testing.T) {
	tasks := &Task{Instrs: []Instr{
		Spawn{"p", &Task{Instrs: []Instr{Receive{"x"}, Send{obs1, "x"}}}},
		Send{"p", msg},
	}}
	p, err := Compile(tasks, rootA)
	if err != nil {
		t.Fatal(err)
	}
	rs, err := machine.RunMany(sys(), p, 24, 5, machine.Options{
		MaxSteps:   250,
		StopOnBarb: []names.Name{obs1},
	}, 4)
	if err != nil {
		t.Fatal(err)
	}
	st := machine.Summarise(rs)
	if st.Quiescent == 0 {
		t.Log("no schedule hit the lost-request race this time (flaky by nature)")
	}
	// The property that must hold: delivery is at least possible.
	if ok, err := machine.CanReachBarb(sys(), p, obs1, 100000); err != nil || !ok {
		t.Fatalf("delivery impossible: %v %v", ok, err)
	}
}

func TestCompiledTaskValidState(t *testing.T) {
	// The compiled form is a closed process over the env; it must step
	// without semantic errors to quiescence under a scheduler.
	tasks := map[names.Name]*Task{
		rootA: {Instrs: []Instr{Send{peerA, msg}}},
		peerA: {Instrs: []Instr{Receive{"x"}, Send{obs1, "x"}}},
	}
	p, err := System(tasks)
	if err != nil {
		t.Fatal(err)
	}
	res, err := machine.Run(sys(), p, machine.Options{MaxSteps: 200, Scheduler: machine.NewRandomScheduler(1)})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps == 0 {
		t.Error("compiled system inert")
	}
}
