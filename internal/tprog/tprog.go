// Package tprog compiles bπ-calculus terms into compact transition
// programs: flat bytecode over pooled leaf transitions, with the static
// part of every Table 3 derivation — choice flattening, match resolution,
// recursion unfolding, the Table 2 discard set, and a head-input dispatch
// table for the broadcast composition rules — done once at compile time
// instead of on every derivation.
//
// A compiled unit corresponds to one exact term (keyed by syntax.ExactKey,
// not the alpha-invariant syntax.Key: alpha-variants have textually
// different transitions). Every parallel component, restriction body and
// recursion unfolding becomes its own unit, so units form a DAG shared
// across all programs in the same Cache: deriving the transitions of a new
// state costs only the composition work above already-executed sub-units,
// never a re-walk of the whole syntax tree.
//
// # Determinism
//
// The executor produces transitions bit-identical to the interpreter
// (semantics.(*System).Steps) because both run the same composition core:
// restriction lifting is semantics.ComposeRes, broadcast composition is
// semantics.ComposePar (the head-input table only replaces its linear scan,
// preserving transition-list order within each (channel, arity) bucket),
// choice is the same left-to-right concatenation, and the final
// normalisation is the same first-occurrence-wins semantics.Dedupe applied
// to the same pre-dedupe append order. The interpreted path stays the
// executable specification; internal/oracle's tprog/agree law checks the
// agreement on every generated term.
package tprog

import (
	"fmt"
	"sync"

	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// opcode is one transition-program instruction kind. Programs are postfix:
// each instruction pushes or combines lists of transitions on an operand
// stack, and a well-formed program leaves exactly one list.
type opcode uint8

const (
	// opEmit pushes the singleton list {leaves[a]}: a prefix transition
	// (rules 2–4), precomputed at compile time.
	opEmit opcode = iota
	// opChoice pops a lists and pushes their left-to-right concatenation —
	// the flattened n-ary choice (rule 8). a == 0 encodes Nil.
	opChoice
	// opRes pops one list and applies the restriction rules (5–7) for the
	// binder binds[a] via semantics.ComposeRes.
	opRes
	// opRef pushes the raw transitions of the sub-unit units[a]
	// (restriction bodies, recursion and call unfoldings — rules 10/11
	// resolved at compile time).
	opRef
	// opPar pushes the broadcast composition (rules 12–14) of units[a] and
	// units[b] via semantics.ComposePar, dispatching receivers through both
	// units' head-input tables and answering rule-14 discard queries from
	// their precomputed listen sets.
	opPar
)

type instr struct {
	op   opcode
	a, b int32
}

// headKey indexes input transitions the way rules 12/13 look them up:
// by channel and arity.
type headKey struct {
	ch    names.Name
	arity int
}

// Prog is the compiled transition program of one exact term. A Prog is
// immutable after compilation; the lazily memoised execution results are
// computed singleflight and are safe for concurrent use.
type Prog struct {
	src    syntax.Proc // the exact term this unit was compiled from
	key    string      // syntax.ExactKey(src)
	code   []instr
	leaves []semantics.Trans // opEmit pool: prefix transitions
	binds  []names.Name      // opRes pool: restriction binders
	units  []*Prog           // opRef/opPar pool: referenced sub-units
	listen names.Set         // precomputed complement of the Table 2 discard set

	cache *Cache // owning cache, for exec counters; nil for standalone programs

	rawOnce sync.Once
	raw     []semantics.Trans // pre-dedupe transitions, interpreter append order
	rawErr  error

	headOnce sync.Once
	head     map[headKey][]semantics.Trans // head-input dispatch table over raw

	outOnce sync.Once
	out     []semantics.Trans // Dedupe(raw): the public Steps order
	outErr  error
}

// Source returns the exact term the program was compiled from.
func (p *Prog) Source() syntax.Proc { return p.src }

// Key returns the exact-syntax key the program is cached under.
func (p *Prog) Key() string { return p.key }

// NumInstr returns the number of bytecode instructions in this unit
// (excluding referenced sub-units).
func (p *Prog) NumInstr() int { return len(p.code) }

// NumUnits returns the number of sub-unit references in this unit's pool.
func (p *Prog) NumUnits() int { return len(p.units) }

// Discards reports the Table 2 discard relation p -a↛ from the precomputed
// listen set: a term discards exactly the channels it has no input
// capability on.
func (p *Prog) Discards(a names.Name) bool { return !p.listen.Contains(a) }

// Listen returns the term's listen set — the complement of its Table 2
// discard set. The set is shared; callers must not mutate it.
func (p *Prog) Listen() names.Set { return p.listen }

// Transitions returns the term's deduplicated transitions — bit-identical
// to semantics.(*System).Steps on the same term. Memoised singleflight.
func (p *Prog) Transitions() ([]semantics.Trans, error) {
	p.outOnce.Do(func() {
		raw, err := p.rawTrans()
		if err != nil {
			p.outErr = err
			return
		}
		p.out = semantics.Dedupe(raw)
	})
	return p.out, p.outErr
}

// Raw returns the pre-dedupe transition list in the interpreter's append
// order — what parent compositions consume (the concrete representatives
// Dedupe keeps depend on this order). The slice is shared; callers must not
// mutate it.
func (p *Prog) Raw() ([]semantics.Trans, error) { return p.rawTrans() }

func (p *Prog) rawTrans() ([]semantics.Trans, error) {
	p.rawOnce.Do(func() {
		p.raw, p.rawErr = p.exec()
		if p.cache != nil {
			p.cache.countExec()
		}
	})
	return p.raw, p.rawErr
}

// exec runs the bytecode. The unit graph published by the compiler is
// acyclic (the compiler detects compilation cycles and bounds unfoldings,
// and only fully built units are ever published), so the recursive rawTrans
// calls on referenced units terminate and the per-unit sync.Once
// memoisation cannot deadlock.
func (p *Prog) exec() ([]semantics.Trans, error) {
	var stack [][]semantics.Trans
	for _, in := range p.code {
		switch in.op {
		case opEmit:
			stack = append(stack, p.leaves[in.a:in.a+1:in.a+1])
		case opChoice:
			n := int(in.a)
			var sum []semantics.Trans
			if n > 0 {
				parts := stack[len(stack)-n:]
				if n == 1 {
					sum = parts[0]
				} else {
					total := 0
					for _, pt := range parts {
						total += len(pt)
					}
					sum = make([]semantics.Trans, 0, total)
					for _, pt := range parts {
						sum = append(sum, pt...)
					}
				}
				stack = stack[:len(stack)-n]
			}
			stack = append(stack, sum)
		case opRes:
			top := stack[len(stack)-1]
			stack[len(stack)-1] = semantics.ComposeRes(p.binds[in.a], top)
		case opRef:
			ts, err := p.units[in.a].rawTrans()
			if err != nil {
				return nil, err
			}
			stack = append(stack, ts)
		case opPar:
			lu, ru := p.units[in.a], p.units[in.b]
			lts, err := lu.rawTrans()
			if err != nil {
				return nil, err
			}
			rts, err := ru.rawTrans()
			if err != nil {
				return nil, err
			}
			ts, err := semantics.ComposePar(lu.side(lts), ru.side(rts))
			if err != nil {
				return nil, err
			}
			stack = append(stack, ts)
		default:
			return nil, fmt.Errorf("tprog: corrupt program: unknown opcode %d", in.op)
		}
	}
	if len(stack) != 1 {
		return nil, fmt.Errorf("tprog: corrupt program for %s: final stack depth %d",
			syntax.String(p.src), len(stack))
	}
	return stack[0], nil
}

// side presents the unit as one component of a broadcast composition: the
// discard oracle is the precomputed listen set and the receiver scan of
// rules 12/13 is served by the head-input dispatch table.
func (p *Prog) side(raw []semantics.Trans) semantics.Side {
	return semantics.Side{
		Proc:    p.src,
		Trans:   raw,
		Discard: func(a names.Name) (bool, error) { return p.Discards(a), nil },
		Inputs:  p.headTable(raw),
	}
}

// headTable builds (once) the unit's input transitions indexed by
// (channel, arity), preserving transition-list order within each bucket —
// the order the linear scan in semantics.Side.forEachInput would visit them.
func (p *Prog) headTable(raw []semantics.Trans) semantics.InputLookup {
	p.headOnce.Do(func() {
		p.head = make(map[headKey][]semantics.Trans)
		for _, t := range raw {
			if !t.Act.IsInput() {
				continue
			}
			k := headKey{t.Act.Subj, len(t.Act.Objs)}
			p.head[k] = append(p.head[k], t)
		}
	})
	return func(ch names.Name, arity int) []semantics.Trans {
		return p.head[headKey{ch, arity}]
	}
}
