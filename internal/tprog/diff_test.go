package tprog_test

import (
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"testing"

	"bpi/internal/names"
	"bpi/internal/parser"
	"bpi/internal/protocols"
	brand "bpi/internal/rand"
	"bpi/internal/semantics"
	"bpi/internal/stress"
	"bpi/internal/syntax"
	"bpi/internal/tprog"
)

// agreeOn checks the compiled path against the interpreted reference on one
// term: the deduplicated transition list must be bit-identical
// (reflect.DeepEqual — labels, binder names, targets, order) and the
// precomputed Table 2 discard set must agree with the recursive walker on
// every free name plus a name the term never mentions. It returns the
// transitions so callers can sweep successors.
func agreeOn(t *testing.T, sys *semantics.System, tc *tprog.Cache, p syntax.Proc) []semantics.Trans {
	t.Helper()
	want, ierr := sys.Steps(p)
	got, cerr := tc.Transitions(p)
	if ierr != nil {
		// The interpreter rejected the term (unfold budget). The compiled
		// path must not silently claim it has transitions.
		if cerr == nil {
			t.Fatalf("interpreter rejects %s (%v) but compiled path succeeds", syntax.String(p), ierr)
		}
		return nil
	}
	if cerr != nil {
		t.Fatalf("compiled path rejects %s: %v", syntax.String(p), cerr)
	}
	if !reflect.DeepEqual(want, got) {
		t.Fatalf("transitions differ on %s:\n interpreted %v\n compiled    %v",
			syntax.String(p), want, got)
	}
	pr, err := tc.Compile(p)
	if err != nil {
		t.Fatalf("Compile(%s): %v", syntax.String(p), err)
	}
	chans := syntax.FreeNames(p).Sorted()
	chans = append(chans, names.Name("zz_never_mentioned"))
	for _, a := range chans {
		iw, derr := sys.Discards(p, a)
		if derr != nil {
			continue
		}
		if cg := pr.Discards(a); cg != iw {
			t.Fatalf("discard set differs on %s for channel %s: interpreted %v, compiled %v",
				syntax.String(p), a, iw, cg)
		}
	}
	return want
}

// sweep checks agreement on the roots and on terms reachable from them via
// symbolic transitions (τ/output continuations as produced, input
// continuations open), visiting at most limit distinct terms.
func sweep(t *testing.T, sys *semantics.System, tc *tprog.Cache, roots []syntax.Proc, limit int) {
	t.Helper()
	seen := map[string]bool{}
	queue := append([]syntax.Proc{}, roots...)
	for len(queue) > 0 && len(seen) < limit {
		p := queue[0]
		queue = queue[1:]
		k := syntax.ExactKey(p)
		if seen[k] {
			continue
		}
		seen[k] = true
		for _, tr := range agreeOn(t, sys, tc, p) {
			queue = append(queue, tr.Target)
		}
	}
}

// TestNastyMatrix is the curated differential matrix: every term shape that
// has historically broken an engine. Mixed-arity stuck listeners (the PR 3
// prover bug shape and Remark 4's ~ vs ~+ separator), weak-saturation
// chains around them, the match-collapse terms from the PR 8 Simplify
// regression, scope extrusion, binder shadowing, and recursion through
// definitions.
func TestNastyMatrix(t *testing.T) {
	a, b, c, x, y := names.Name("a"), names.Name("b"), names.Name("c"), names.Name("x"), names.Name("y")
	G := syntax.Group(syntax.RecvN(b), syntax.RecvN(b, x)) // Remark 4 stuck listener b? | b?(x)
	env := syntax.Env{}
	relay := syntax.Rec{Id: "R", Body: syntax.Recv(a, []names.Name{x}, syntax.Prefix{Pre: syntax.Out{Ch: b, Args: []names.Name{x}}, Cont: syntax.Call{Id: "R"}})}
	terms := []syntax.Proc{
		// Mixed-arity stuck listeners and their weak-saturation wrappers.
		G,
		syntax.TauP(G),
		syntax.TauP(syntax.TauP(G)),
		syntax.Restrict(G, b),
		syntax.Group(G, syntax.RecvN(b, x)),
		syntax.Group(syntax.SendN(b, a), G),
		syntax.Group(syntax.SendN(b), G),
		// Match-collapse shapes from the PR 8 Simplify regression.
		syntax.Par{
			L: syntax.If(c, b,
				syntax.If(b, b, syntax.Recv(a, []names.Name{"c_b"}, syntax.PNil), syntax.SendN(b, c)),
				syntax.Par{L: syntax.TauP(syntax.PNil), R: syntax.TauP(syntax.PNil)}),
			R: syntax.Restrict(syntax.TauP(syntax.PNil), "c_n", "b_n"),
		},
		syntax.Sum{L: syntax.If(a, a, syntax.Sum{L: syntax.TauP(syntax.PNil), R: syntax.SendN(b)}, syntax.PNil), R: syntax.TauP(syntax.PNil)},
		// Scope extrusion and re-binding: νx (āx | x?(y)), νx (āx | b?(x)).
		syntax.Restrict(syntax.Group(syntax.SendN(a, x), syntax.Recv(x, []names.Name{y}, syntax.SendN(y))), x),
		syntax.Restrict(syntax.Group(syntax.SendN(a, x), syntax.RecvN(b, x)), x),
		// Shadowing: the restricted name collides with an input parameter.
		syntax.Restrict(syntax.Recv(a, []names.Name{x}, syntax.SendN(x)), x),
		// Joint reception at equal arity, plus a discarding third party.
		syntax.Group(syntax.Recv(a, []names.Name{x}, syntax.SendN(x)), syntax.Recv(a, []names.Name{y}, syntax.SendN(y, y)), syntax.SendN(c)),
		// n-ary flattened choice mixing all prefix kinds and a match.
		syntax.Choice(syntax.TauP(syntax.SendN(a)), syntax.RecvN(a, x), syntax.SendN(b, c), syntax.If(a, b, syntax.SendN(c), syntax.RecvN(c))),
		// Guarded recursion (rec) composed with a listener.
		syntax.Group(relay, syntax.RecvN(b, y)),
	}
	sys := semantics.NewSystem(env)
	tc := tprog.NewCache(sys)
	sweep(t, sys, tc, terms, 400)
}

// TestDefinitionsAgree covers rule 11's Call branch: definitions expanded
// through the environment, including a mutually recursive pair.
func TestDefinitionsAgree(t *testing.T) {
	prog, err := parser.ParseProgram(`
let Ping(a, b) = a!().Pong(a, b)
let Pong(a, b) = b?().Ping(a, b)
Ping(l, r) | Pong(l, r) | r?(x).l!(x)
`)
	if err != nil {
		t.Fatal(err)
	}
	sys := semantics.NewSystem(prog.Env)
	tc := tprog.NewCache(sys)
	sweep(t, sys, tc, []syntax.Proc{prog.Main}, 200)
}

// TestRandomTermsAgree fuzzes the matrix deterministically: generator pairs
// from the oracle profile, swept two transition levels deep.
func TestRandomTermsAgree(t *testing.T) {
	sys := semantics.NewSystem(nil)
	tc := tprog.NewCache(sys)
	for seed := int64(0); seed < 150; seed++ {
		g := brand.New(seed, brand.OracleConfig())
		p, q := g.Pair()
		sweep(t, sys, tc, []syntax.Proc{p, q, g.Mutate(p), g.MutateEquiv(q)}, 40)
	}
}

// TestCatalogueAgrees requires every term of the full protocol catalogue —
// healthy and fault-injected alike — to compile and agree with the
// interpreter, on the scenario terms themselves and a bounded sweep of
// their derivatives.
func TestCatalogueAgrees(t *testing.T) {
	cat := protocols.Catalogue()
	if len(cat) < 40 {
		t.Fatalf("catalogue unexpectedly small: %d scenarios", len(cat))
	}
	sys := semantics.NewSystem(nil)
	tc := tprog.NewCache(sys)
	for _, sc := range cat {
		sweep(t, sys, tc, []syntax.Proc{sc.Impl, sc.Spec}, 60)
	}
}

// TestStressCorpusAgrees sweeps the stress topology corpus (rings, mesh,
// tree and their rotations) through the differential check.
func TestStressCorpusAgrees(t *testing.T) {
	sys := semantics.NewSystem(nil)
	tc := tprog.NewCache(sys)
	for _, cfg := range stress.Corpus() {
		sweep(t, sys, tc, []syntax.Proc{cfg.P, cfg.Q}, 150)
	}
}

// TestProgramFilesAgree runs the checked-in example programs through the
// differential check, definitions environment included.
func TestProgramFilesAgree(t *testing.T) {
	files, err := filepath.Glob(filepath.Join("..", "..", "testdata", "*.bpi"))
	if err != nil || len(files) == 0 {
		t.Fatalf("no testdata programs found: %v", err)
	}
	for _, f := range files {
		src, err := os.ReadFile(f)
		if err != nil {
			t.Fatal(err)
		}
		prog, err := parser.ParseProgram(string(src))
		if err != nil {
			t.Fatalf("%s: %v", f, err)
		}
		if prog.Main == nil {
			continue
		}
		sys := semantics.NewSystem(prog.Env)
		tc := tprog.NewCache(sys)
		t.Run(strings.TrimSuffix(filepath.Base(f), ".bpi"), func(t *testing.T) {
			sweep(t, sys, tc, []syntax.Proc{prog.Main}, 120)
		})
	}
}
