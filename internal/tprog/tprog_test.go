package tprog

import (
	"errors"
	"reflect"
	"testing"

	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

var (
	na = names.Name("a")
	nb = names.Name("b")
	nc = names.Name("c")
	nx = names.Name("x")
)

func ops(p *Prog) []opcode {
	out := make([]opcode, len(p.code))
	for i, in := range p.code {
		out[i] = in.op
	}
	return out
}

// TestFlattenedChoice pins the compiled shape of a nested sum: one n-ary
// opChoice over the flattened alternatives, not a tree of binary nodes.
func TestFlattenedChoice(t *testing.T) {
	p := syntax.Sum{
		L: syntax.Sum{L: syntax.SendN(na), R: syntax.TauP(syntax.PNil)},
		R: syntax.RecvN(nb, nx),
	}
	u, err := Compile(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	want := []opcode{opEmit, opEmit, opEmit, opChoice}
	if !reflect.DeepEqual(ops(u), want) {
		t.Fatalf("code = %v, want %v", ops(u), want)
	}
	if n := u.code[3].a; n != 3 {
		t.Fatalf("choice arity = %d, want 3", n)
	}
}

// TestNilShape pins Nil as the empty choice.
func TestNilShape(t *testing.T) {
	u, err := Compile(nil, syntax.PNil)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ops(u), []opcode{opChoice}; !reflect.DeepEqual(got, want) {
		t.Fatalf("code = %v, want %v", got, want)
	}
	ts, err := u.Transitions()
	if err != nil || len(ts) != 0 {
		t.Fatalf("Nil transitions = %v, %v", ts, err)
	}
}

// TestMatchResolvedAtCompileTime pins that matches vanish from the
// bytecode: [a=a]P compiles to P's code, [a=b]P/Q to Q's.
func TestMatchResolvedAtCompileTime(t *testing.T) {
	taken := syntax.If(na, na, syntax.SendN(nb), syntax.RecvN(nc))
	u, err := Compile(nil, taken)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ops(u), []opcode{opEmit}; !reflect.DeepEqual(got, want) {
		t.Fatalf("taken-branch code = %v, want %v", got, want)
	}
	if !u.leaves[0].Act.IsOutput() {
		t.Fatalf("taken branch should emit the output leaf, got %v", u.leaves[0].Act)
	}
	els := syntax.If(na, nb, syntax.SendN(nb), syntax.RecvN(nc))
	u2, err := Compile(nil, els)
	if err != nil {
		t.Fatal(err)
	}
	if !u2.leaves[0].Act.IsInput() {
		t.Fatalf("else branch should emit the input leaf, got %v", u2.leaves[0].Act)
	}
}

// TestUnitSharing pins the DAG: the two identical components of a parallel
// composition share one compiled unit, within a call and across calls of
// the same cache.
func TestUnitSharing(t *testing.T) {
	comp := syntax.Recv(na, []names.Name{nx}, syntax.SendN(nx))
	p := syntax.Par{L: comp, R: comp}
	u, err := Compile(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ops(u), []opcode{opPar}; !reflect.DeepEqual(got, want) {
		t.Fatalf("code = %v, want %v", got, want)
	}
	if u.units[u.code[0].a] != u.units[u.code[0].b] {
		t.Fatal("identical components did not share a unit")
	}

	c := NewCache(nil)
	u1, err := c.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	u2, err := c.Compile(syntax.Par{L: comp, R: syntax.SendN(nb)})
	if err != nil {
		t.Fatal(err)
	}
	if u1.units[0] != u2.units[0] {
		t.Fatal("shared subterm recompiled across cache calls")
	}
}

// TestListenSets pins the precomputed Table 2 discard complements against
// the recursive interpreter on a structural matrix.
func TestListenSets(t *testing.T) {
	sys := semantics.NewSystem(nil)
	cases := []struct {
		p      syntax.Proc
		listen []names.Name
	}{
		{syntax.PNil, nil},
		{syntax.TauP(syntax.SendN(na)), nil},
		{syntax.SendN(na), nil},
		{syntax.RecvN(na, nx), []names.Name{na}},
		{syntax.Choice(syntax.RecvN(na), syntax.RecvN(nb), syntax.SendN(nc)), []names.Name{na, nb}},
		{syntax.Group(syntax.RecvN(na), syntax.RecvN(nb)), []names.Name{na, nb}},
		{syntax.Restrict(syntax.Group(syntax.RecvN(na), syntax.RecvN(nb)), na), []names.Name{nb}},
		{syntax.If(na, na, syntax.RecvN(nb), syntax.RecvN(nc)), []names.Name{nb}},
		{syntax.If(na, nb, syntax.RecvN(nb), syntax.RecvN(nc)), []names.Name{nc}},
		{syntax.Rec{Id: "A", Body: syntax.Recv(na, nil, syntax.Call{Id: "A"})}, []names.Name{na}},
	}
	for _, tcase := range cases {
		u, err := Compile(sys, tcase.p)
		if err != nil {
			t.Fatalf("Compile(%s): %v", syntax.String(tcase.p), err)
		}
		want := names.NewSet(tcase.listen...)
		if !u.Listen().Equal(want) {
			t.Errorf("listen(%s) = %v, want %v", syntax.String(tcase.p), u.Listen(), want)
		}
		// Cross-check the derived Discards answers against the walker.
		for _, a := range []names.Name{na, nb, nc, "zz"} {
			iw, err := sys.Discards(tcase.p, a)
			if err != nil {
				t.Fatal(err)
			}
			if got := u.Discards(a); got != iw {
				t.Errorf("Discards(%s, %s) = %v, interpreter says %v", syntax.String(tcase.p), a, got, iw)
			}
		}
	}
}

// TestUnguardedRecursionRejected pins the compile-time cycle detection: a
// recursion that reaches itself without a guarding prefix is an error, and
// the store-level fallback (interpreted Steps) also rejects it — so the
// caller-visible error surface matches.
func TestUnguardedRecursionRejected(t *testing.T) {
	p := syntax.Rec{Id: "A", Body: syntax.Call{Id: "A"}}
	if _, err := Compile(nil, p); err == nil {
		t.Fatal("unguarded recursion compiled")
	}
	if _, err := semantics.NewSystem(nil).Steps(p); err == nil {
		t.Fatal("interpreter accepted unguarded recursion the compiler rejects")
	}
}

// TestUnfoldBudget pins the budget error type: exhausting MaxUnfold during
// compilation reports the same semantics.ErrUnfoldBudget the interpreter
// uses.
func TestUnfoldBudget(t *testing.T) {
	sys := &semantics.System{MaxUnfold: 1}
	p := syntax.Rec{Id: "A", Body: syntax.Rec{Id: "B", Body: syntax.SendN(nb)}}
	_, err := Compile(sys, p)
	var budget semantics.ErrUnfoldBudget
	if !errors.As(err, &budget) {
		t.Fatalf("err = %v, want ErrUnfoldBudget", err)
	}
	if budget.Limit != 1 {
		t.Fatalf("budget limit = %d, want 1", budget.Limit)
	}
}

// TestUnknownCallRejected pins definition-environment errors.
func TestUnknownCallRejected(t *testing.T) {
	if _, err := Compile(nil, syntax.Call{Id: "Nope"}); err == nil {
		t.Fatal("unknown identifier compiled")
	}
}

// TestExecMemoised pins the per-unit execution memo: repeated Transitions
// calls return the same slice and cost one execution.
func TestExecMemoised(t *testing.T) {
	c := NewCache(nil)
	p := syntax.Group(syntax.SendN(na), syntax.RecvN(na, nx))
	u, err := c.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	t1, err := u.Transitions()
	if err != nil {
		t.Fatal(err)
	}
	t2, _ := u.Transitions()
	if &t1[0] != &t2[0] {
		t.Fatal("Transitions not memoised")
	}
	// Par execution executes the root and both leaf units exactly once.
	if got := c.Stats().Execs; got != 3 {
		t.Fatalf("execs = %d, want 3", got)
	}
}

// TestRecSharing pins that the unfolding of a guarded recursion is a
// referenced unit, executed once no matter how many states reach it.
func TestRecSharing(t *testing.T) {
	c := NewCache(nil)
	r := syntax.Rec{Id: "A", Body: syntax.Recv(na, nil, syntax.Call{Id: "A"})}
	u, err := c.Compile(r)
	if err != nil {
		t.Fatal(err)
	}
	if got, want := ops(u), []opcode{opRef}; !reflect.DeepEqual(got, want) {
		t.Fatalf("code = %v, want %v", got, want)
	}
	ts, err := u.Transitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || !ts[0].Act.IsInput() {
		t.Fatalf("rec transitions = %v", ts)
	}
}
