package tprog

import (
	"sync"
	"sync/atomic"

	"bpi/internal/obs"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

const cacheShards = 64

type cacheShard struct {
	mu sync.Mutex
	m  map[string]*Prog
}

// flight is one in-progress top-level Transitions computation other callers
// of the same term wait on.
type flight struct {
	done chan struct{}
	ts   []semantics.Trans
	err  error
}

// Cache is a sharded, concurrency-safe store of compiled units keyed by
// exact syntax (syntax.ExactKey). Publication is idempotent — the first
// fully built unit for a key wins, and a lost race discards the duplicate —
// so concurrent compilations of overlapping terms never block each other
// and every consumer observes one canonical unit per term. Top-level
// Transitions calls for the same term are additionally collapsed
// singleflight, like the derivation memos in equiv.Store.
type Cache struct {
	sys    *semantics.System
	shards [cacheShards]cacheShard

	mu      sync.Mutex
	flights map[string]*flight

	// Reuse/work counters. Hits and misses count unit requests against the
	// shared cache (a singleflight join counts as a hit); compiles counts
	// units actually built (a lost publication race builds twice and counts
	// twice — it is a work counter, not an occupancy counter); execs counts
	// unit bytecode executions.
	compiles atomic.Uint64
	hits     atomic.Uint64
	misses   atomic.Uint64
	execs    atomic.Uint64

	// Mirror counters on an attached tracer (SetObs); nil — a no-op with
	// no atomic traffic — until a tracer is attached.
	obsCompiles, obsHits, obsMisses, obsExecs *obs.Counter
}

// NewCache returns an empty compiled-unit cache over sys (nil means the
// empty definitions environment with default budgets).
func NewCache(sys *semantics.System) *Cache {
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	c := &Cache{sys: sys, flights: map[string]*flight{}}
	for i := range c.shards {
		c.shards[i].m = map[string]*Prog{}
	}
	return c
}

// System returns the semantic system programs are compiled against.
func (c *Cache) System() *semantics.System { return c.sys }

// SetObs mirrors the cache counters (tprog.compiles, tprog.cache_hits,
// tprog.cache_misses, tprog.execs) onto t, live rather than snapshot.
// Attach before the cache is shared across goroutines; a nil t detaches.
func (c *Cache) SetObs(t *obs.Tracer) {
	c.obsCompiles = t.Counter("tprog.compiles")
	c.obsHits = t.Counter("tprog.cache_hits")
	c.obsMisses = t.Counter("tprog.cache_misses")
	c.obsExecs = t.Counter("tprog.execs")
}

// CacheStats is a snapshot of the cache's occupancy and work counters.
type CacheStats struct {
	// Units is the number of published compiled units.
	Units int
	// Compiles counts units built; Hits/Misses count unit requests served
	// from (resp. missing) the shared cache; Execs counts unit executions.
	Compiles, Hits, Misses, Execs uint64
}

// Stats returns a consistent-enough snapshot (each counter is read
// atomically; the set is not one atomic snapshot).
func (c *Cache) Stats() CacheStats {
	st := CacheStats{
		Compiles: c.compiles.Load(),
		Hits:     c.hits.Load(),
		Misses:   c.misses.Load(),
		Execs:    c.execs.Load(),
	}
	for i := range c.shards {
		sh := &c.shards[i]
		sh.mu.Lock()
		st.Units += len(sh.m)
		sh.mu.Unlock()
	}
	return st
}

func (c *Cache) shardFor(key string) *cacheShard {
	// FNV-1a, inlined to avoid a hash.Hash allocation per lookup.
	h := uint32(2166136261)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= 16777619
	}
	return &c.shards[h%cacheShards]
}

// lookup returns the published unit for key, counting a hit or a miss.
func (c *Cache) lookup(key string) (*Prog, bool) {
	sh := c.shardFor(key)
	sh.mu.Lock()
	u := sh.m[key]
	sh.mu.Unlock()
	if u != nil {
		c.hits.Add(1)
		c.obsHits.Add(1)
		return u, true
	}
	c.misses.Add(1)
	c.obsMisses.Add(1)
	return nil, false
}

// peek is lookup without counters — for fast paths that fall through to a
// counting path on miss.
func (c *Cache) peek(key string) *Prog {
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	return sh.m[key]
}

// publish installs a freshly built unit, counting the build. If another
// goroutine published the same key first, that unit wins and is returned;
// units are immutable and deterministic, so the duplicate is simply dropped.
func (c *Cache) publish(key string, u *Prog) *Prog {
	c.compiles.Add(1)
	c.obsCompiles.Add(1)
	sh := c.shardFor(key)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	if prev := sh.m[key]; prev != nil {
		return prev
	}
	sh.m[key] = u
	return u
}

func (c *Cache) countExec() {
	c.execs.Add(1)
	c.obsExecs.Add(1)
}

// Compile returns the compiled program for p, building and publishing any
// units not already cached. Safe for concurrent use.
func (c *Cache) Compile(p syntax.Proc) (*Prog, error) {
	comp := &compiler{sys: c.sys, cache: c, memo: map[string]*Prog{}, inflight: map[string]bool{}}
	return comp.unit(p)
}

// Transitions compiles p (or retrieves its cached program) and returns its
// deduplicated transitions — a drop-in replacement for System.Steps with
// bit-identical results. Concurrent calls for a term not yet cached are
// collapsed into one compilation (singleflight); execution is memoised per
// unit regardless.
func (c *Cache) Transitions(p syntax.Proc) ([]semantics.Trans, error) {
	key := syntax.ExactKey(p)
	if u := c.peek(key); u != nil {
		c.hits.Add(1)
		c.obsHits.Add(1)
		return u.Transitions()
	}
	c.mu.Lock()
	if f := c.flights[key]; f != nil {
		c.mu.Unlock()
		<-f.done
		c.hits.Add(1) // a singleflight join is a cache hit
		c.obsHits.Add(1)
		return f.ts, f.err
	}
	f := &flight{done: make(chan struct{})}
	c.flights[key] = f
	c.mu.Unlock()
	u, err := c.Compile(p)
	if err != nil {
		f.err = err
	} else {
		f.ts, f.err = u.Transitions()
	}
	c.mu.Lock()
	delete(c.flights, key)
	c.mu.Unlock()
	close(f.done)
	return f.ts, f.err
}
