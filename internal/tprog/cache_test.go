package tprog

import (
	"reflect"
	"sync"
	"testing"

	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// TestCacheAccounting pins the per-unit hit/miss/compile ledger through a
// cold compile, a warm repeat, and a superterm that reuses a cached unit.
func TestCacheAccounting(t *testing.T) {
	c := NewCache(nil)
	p := syntax.Par{L: syntax.SendN(na), R: syntax.RecvN(na, nx)} // 3 units: par + 2 leaves
	if _, err := c.Transitions(p); err != nil {
		t.Fatal(err)
	}
	st := c.Stats()
	if st.Units != 3 || st.Compiles != 3 || st.Misses != 3 || st.Hits != 0 {
		t.Fatalf("after cold compile: %+v, want Units=Compiles=Misses=3, Hits=0", st)
	}

	// Warm repeat: one hit (the published root), nothing rebuilt.
	if _, err := c.Transitions(p); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Units != 3 || st.Compiles != 3 || st.Misses != 3 || st.Hits != 1 {
		t.Fatalf("after warm repeat: %+v, want Hits=1 and no new compiles", st)
	}

	// A superterm reuses p's unit wholesale: 2 new units (the new root and
	// the new leaf), one cache hit for p itself.
	q := syntax.Par{L: p, R: syntax.SendN(nb)}
	if _, err := c.Transitions(q); err != nil {
		t.Fatal(err)
	}
	st = c.Stats()
	if st.Units != 5 || st.Compiles != 5 || st.Misses != 5 || st.Hits != 2 {
		t.Fatalf("after superterm: %+v, want Units=Compiles=Misses=5, Hits=2", st)
	}
}

// TestSingleflightChurn hammers one cold term from 32 goroutines: the
// flight must collapse the work to exactly one compilation per unit and one
// execution per unit, every caller must get the identical transition list,
// and the joiners must account as cache hits. Run under -race in CI.
func TestSingleflightChurn(t *testing.T) {
	const goroutines = 32
	c := NewCache(nil)
	p := syntax.Group(
		syntax.SendN(na, nb),
		syntax.Recv(na, []syntax.Name{nx}, syntax.SendN(nx)),
		syntax.RecvN(nc),
	)
	want, err := c.System().Steps(p)
	if err != nil {
		t.Fatal(err)
	}

	var start, done sync.WaitGroup
	start.Add(1)
	outs := make([][]semantics.Trans, goroutines)
	errs := make([]error, goroutines)
	done.Add(goroutines)
	for i := 0; i < goroutines; i++ {
		go func(i int) {
			defer done.Done()
			start.Wait()
			ts, err := c.Transitions(p)
			outs[i], errs[i] = ts, err
		}(i)
	}
	start.Done()
	done.Wait()

	for i := 0; i < goroutines; i++ {
		if errs[i] != nil {
			t.Fatalf("goroutine %d: %v", i, errs[i])
		}
		if !reflect.DeepEqual(outs[i], want) {
			t.Fatalf("goroutine %d saw different transitions", i)
		}
	}
	st := c.Stats()
	units := st.Units
	if units == 0 {
		t.Fatal("no units published")
	}
	if st.Compiles != uint64(units) {
		t.Fatalf("compiles = %d, want exactly one per unit (%d): flight leaked work", st.Compiles, units)
	}
	if st.Execs != uint64(units) {
		t.Fatalf("execs = %d, want exactly one per unit (%d)", st.Execs, units)
	}
	if st.Hits != goroutines-1 {
		t.Fatalf("hits = %d, want %d (every non-leader join is a hit)", st.Hits, goroutines-1)
	}
	if st.Misses != uint64(units) {
		t.Fatalf("misses = %d, want %d", st.Misses, units)
	}
}

// TestPublishFirstWins pins idempotent publication: once a unit is
// published, every later compile of the same term returns the same pointer
// — the artifact is immutable, there is no invalidation path.
func TestPublishFirstWins(t *testing.T) {
	c := NewCache(nil)
	p := syntax.Restrict(syntax.Group(syntax.SendN(na, nx), syntax.RecvN(nx)), nx)
	u1, err := c.Compile(p)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		u2, err := c.Compile(p)
		if err != nil {
			t.Fatal(err)
		}
		if u2 != u1 {
			t.Fatal("republished unit changed identity")
		}
	}
}

// TestConcurrentDistinctTerms compiles overlapping but distinct terms from
// many goroutines — publication races are allowed to build duplicates, but
// the cache must stay consistent and every result correct. Run under -race.
func TestConcurrentDistinctTerms(t *testing.T) {
	c := NewCache(nil)
	shared := syntax.Recv(na, []syntax.Name{nx}, syntax.SendN(nx))
	var wg sync.WaitGroup
	for i := 0; i < 16; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			var p syntax.Proc = shared
			for j := 0; j < i%5; j++ {
				p = syntax.Par{L: p, R: syntax.SendN(nb)}
			}
			ts, err := c.Transitions(p)
			if err != nil {
				t.Errorf("goroutine %d: %v", i, err)
				return
			}
			want, err := c.System().Steps(p)
			if err != nil || !reflect.DeepEqual(ts, want) {
				t.Errorf("goroutine %d: compiled/interpreted mismatch (%v)", i, err)
			}
		}(i)
	}
	wg.Wait()
	if st := c.Stats(); st.Units == 0 {
		t.Fatal("no units published")
	}
}
