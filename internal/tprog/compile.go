package tprog

import (
	"fmt"

	"bpi/internal/actions"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// compiler is the state of one compilation call: the per-call unfold budget
// (matching the interpreter's per-Steps budget in spirit), a per-call memo
// so shared subterms compile once even without a Cache, and the set of
// exact terms on the current compilation path — reaching one again without
// having consumed a prefix is an unguarded recursion, which the compiler
// rejects instead of looping.
type compiler struct {
	sys      *semantics.System
	cache    *Cache
	memo     map[string]*Prog
	inflight map[string]bool
	unfolds  int
}

func (c *compiler) spendUnfold() error {
	limit := c.sys.MaxUnfold
	if limit == 0 {
		limit = 10000
	}
	c.unfolds++
	if c.unfolds > limit {
		return semantics.ErrUnfoldBudget{Limit: limit}
	}
	return nil
}

// Compile compiles p against sys without a shared cache. Sub-units are
// still shared within the returned program (per-call memo), but nothing
// escapes the call. Prefer Cache.Compile for anything repeated.
func Compile(sys *semantics.System, p syntax.Proc) (*Prog, error) {
	if sys == nil {
		sys = semantics.NewSystem(nil)
	}
	c := &compiler{sys: sys, memo: map[string]*Prog{}, inflight: map[string]bool{}}
	return c.unit(p)
}

// unit returns the compiled unit for p: from the per-call memo, the shared
// cache, or by building and publishing it.
func (c *compiler) unit(p syntax.Proc) (*Prog, error) {
	key := syntax.ExactKey(p)
	if u, ok := c.memo[key]; ok {
		return u, nil
	}
	if c.cache != nil {
		if u, ok := c.cache.lookup(key); ok {
			c.memo[key] = u
			return u, nil
		}
	}
	if c.inflight[key] {
		return nil, fmt.Errorf("tprog: compilation cycle at %s (unguarded recursion)", syntax.String(p))
	}
	c.inflight[key] = true
	defer delete(c.inflight, key)
	u := &Prog{src: p, key: key}
	if c.cache != nil {
		u.cache = c.cache
	}
	b := &builder{c: c, u: u}
	listen, err := b.node(p)
	if err != nil {
		return nil, err
	}
	u.listen = listen
	if c.cache != nil {
		u = c.cache.publish(key, u)
	}
	c.memo[key] = u
	return u, nil
}

// builder appends bytecode for one unit. Invariant: every node() call
// compiles to code that pushes exactly one transition list, so the operand
// stack depth is statically balanced.
type builder struct {
	c *compiler
	u *Prog
}

func (b *builder) emit(op opcode, a, operandB int32) {
	b.u.code = append(b.u.code, instr{op, a, operandB})
}

func (b *builder) addUnit(u *Prog) int32 {
	b.u.units = append(b.u.units, u)
	return int32(len(b.u.units) - 1)
}

// node compiles p, appending to the current unit, and returns p's listen
// set (the complement of its Table 2 discard set): listen(nil)=∅,
// listen(a(x̃).P)={a}, listen(τ.P)=listen(āx̃.P)=∅, sums and parallels
// union, matches take the chosen branch, restriction subtracts its binder,
// and rec/call take the unfolding's set.
func (b *builder) node(p syntax.Proc) (names.Set, error) {
	switch t := p.(type) {
	case syntax.Nil:
		b.emit(opChoice, 0, 0)
		return nil, nil
	case syntax.Prefix:
		var leaf semantics.Trans
		var listen names.Set
		switch pre := t.Pre.(type) {
		case syntax.Tau: // rule (2)
			leaf = semantics.Trans{Act: actions.NewTau(), Target: t.Cont}
		case syntax.Out: // rule (4)
			leaf = semantics.Trans{Act: actions.NewOut(pre.Ch, pre.Args), Target: t.Cont}
		case syntax.In: // rule (3), symbolic early form
			leaf = semantics.Trans{Act: actions.NewIn(pre.Ch, pre.Params), Target: t.Cont}
			listen = names.NewSet(pre.Ch)
		default:
			return nil, fmt.Errorf("tprog: unknown prefix %T", t.Pre)
		}
		idx := int32(len(b.u.leaves))
		b.u.leaves = append(b.u.leaves, leaf)
		b.emit(opEmit, idx, 0)
		return listen, nil
	case syntax.Sum: // rule (8), flattened to one n-ary choice
		alts := syntax.SumList(t)
		var listen names.Set
		for _, alt := range alts {
			l, err := b.node(alt)
			if err != nil {
				return nil, err
			}
			listen = listen.AddAll(l)
		}
		b.emit(opChoice, int32(len(alts)), 0)
		return listen, nil
	case syntax.Match: // rules (9), (10): resolved at compile time
		if t.X == t.Y {
			return b.node(t.Then)
		}
		return b.node(t.Else)
	case syntax.Res: // rules (5)–(7): the body is its own shared unit
		u, err := b.c.unit(t.Body)
		if err != nil {
			return nil, err
		}
		b.emit(opRef, b.addUnit(u), 0)
		bi := int32(len(b.u.binds))
		b.u.binds = append(b.u.binds, t.X)
		b.emit(opRes, bi, 0)
		listen := names.NewSet().AddAll(u.listen)
		listen.Remove(t.X)
		return listen, nil
	case syntax.Par: // rules (12)–(14): each component is its own unit
		lu, err := b.c.unit(t.L)
		if err != nil {
			return nil, err
		}
		ru, err := b.c.unit(t.R)
		if err != nil {
			return nil, err
		}
		li := b.addUnit(lu)
		ri := b.addUnit(ru)
		b.emit(opPar, li, ri)
		return names.NewSet().AddAll(lu.listen).AddAll(ru.listen), nil
	case syntax.Rec: // rule (11): unfold at compile time, share the unit
		if err := b.c.spendUnfold(); err != nil {
			return nil, err
		}
		return b.ref(syntax.Unfold(t))
	case syntax.Call:
		if err := b.c.spendUnfold(); err != nil {
			return nil, err
		}
		q, err := b.c.sys.Env.Expand(t)
		if err != nil {
			return nil, err
		}
		return b.ref(q)
	default:
		return nil, fmt.Errorf("tprog: unknown process node %T", p)
	}
}

// ref compiles q as a separate unit and references it — used for recursion
// and call unfoldings, so an expansion reached from many states is compiled
// and executed once. Compilation stops at prefixes (continuations are
// leaves), so guarded recursion terminates: the continuation compiles when
// the successor state is first explored, exactly like the interpreter.
func (b *builder) ref(q syntax.Proc) (names.Set, error) {
	u, err := b.c.unit(q)
	if err != nil {
		return nil, err
	}
	b.emit(opRef, b.addUnit(u), 0)
	return u.listen, nil
}
