package tprog_test

import (
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"bpi/internal/parser"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
	"bpi/internal/tprog"
)

// FuzzCompiledAgree feeds arbitrary bπ source programs through the parser
// and requires the compiled transition programs to agree bit-for-bit with
// the interpreted semantics on the main term and a bounded sweep of its
// derivatives. Seeds: the checked-in example programs plus hand-picked
// shapes covering every rule family (broadcast composition, scope
// extrusion, mixed arities, matches, recursion through definitions).
func FuzzCompiledAgree(f *testing.F) {
	files, _ := filepath.Glob(filepath.Join("..", "..", "testdata", "*.bpi"))
	for _, fn := range files {
		if src, err := os.ReadFile(fn); err == nil {
			f.Add(string(src))
		}
	}
	f.Add("b?() | b?(x)")
	f.Add("tau.(b?() | b?(x)) + a!(b)")
	f.Add("nu x.(a!(x) | x?(y).y!())")
	f.Add("a?(x).x! | a?(y).(y! | c?())")
	f.Add("[a=a](tau.0 + b!) | [a=b]c?(z).z!(z)")
	f.Add("let A(c) = c?(v).A(v)\nA(start) | start!(next)")
	f.Fuzz(func(t *testing.T, src string) {
		prog, err := parser.ParseProgram(src)
		if err != nil || prog.Main == nil {
			t.Skip()
		}
		// A small budget keeps adversarial recursion cheap; both paths get
		// the same budget so accepted terms are compared like for like.
		sys := &semantics.System{Env: prog.Env, MaxUnfold: 200}
		tc := tprog.NewCache(sys)
		seen := map[string]bool{}
		queue := []syntax.Proc{prog.Main}
		for len(queue) > 0 && len(seen) < 30 {
			p := queue[0]
			queue = queue[1:]
			k := syntax.ExactKey(p)
			if seen[k] {
				continue
			}
			seen[k] = true
			want, ierr := sys.Steps(p)
			got, cerr := tc.Transitions(p)
			if ierr != nil {
				if cerr == nil {
					t.Fatalf("interpreter rejects %s (%v) but compiled path succeeds", syntax.String(p), ierr)
				}
				continue
			}
			if cerr != nil {
				t.Fatalf("compiled path rejects %s: %v", syntax.String(p), cerr)
			}
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("transitions differ on %s:\n interpreted %v\n compiled    %v",
					syntax.String(p), want, got)
			}
			pr, err := tc.Compile(p)
			if err != nil {
				t.Fatalf("Compile(%s): %v", syntax.String(p), err)
			}
			for _, a := range syntax.FreeNames(p).Sorted() {
				iw, derr := sys.Discards(p, a)
				if derr != nil {
					continue
				}
				if pr.Discards(a) != iw {
					t.Fatalf("discard set differs on %s for %s", syntax.String(p), a)
				}
			}
			for _, tr := range want {
				queue = append(queue, tr.Target)
			}
		}
	})
}
