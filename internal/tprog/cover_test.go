package tprog

import (
	"reflect"
	"testing"

	"bpi/internal/obs"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// badRec is an unguarded recursion the compiler must reject: unfolding
// (rec A.A)⟨⟩ reproduces itself without consuming a prefix.
func badRec() syntax.Proc { return syntax.Rec{Id: "A", Body: syntax.Call{Id: "A"}} }

// TestProgAccessors pins the metadata surface of a compiled program.
func TestProgAccessors(t *testing.T) {
	p := syntax.Par{L: syntax.SendN(na), R: syntax.RecvN(na, nx)}
	u, err := Compile(nil, p)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(u.Source(), p) {
		t.Errorf("Source() = %v, want %v", u.Source(), p)
	}
	if u.Key() != syntax.ExactKey(p) {
		t.Errorf("Key() = %q, want ExactKey", u.Key())
	}
	if u.NumInstr() == 0 {
		t.Error("NumInstr() = 0 for a parallel composition")
	}
	if u.NumUnits() != 2 {
		t.Errorf("NumUnits() = %d, want 2 component units", u.NumUnits())
	}
	raw, err := u.Raw()
	if err != nil {
		t.Fatal(err)
	}
	out, err := u.Transitions()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(semantics.Dedupe(raw), out) {
		t.Error("Transitions() is not Dedupe(Raw())")
	}
}

// TestCompileErrorPaths drives a compilation failure through every node
// kind that propagates sub-compilation errors, plus an unresolvable Call.
func TestCompileErrorPaths(t *testing.T) {
	cases := []struct {
		name string
		p    syntax.Proc
	}{
		{"rec", badRec()},
		{"sum-alt", syntax.Sum{L: badRec(), R: syntax.SendN(na)}},
		{"res-body", syntax.Res{X: na, Body: badRec()}},
		{"par-left", syntax.Par{L: badRec(), R: syntax.PNil}},
		{"par-right", syntax.Par{L: syntax.SendN(na), R: badRec()}},
		{"undefined-call", syntax.Call{Id: "NoSuchDef"}},
	}
	for _, tc := range cases {
		if _, err := Compile(nil, tc.p); err == nil {
			t.Errorf("%s: Compile accepted %s", tc.name, syntax.String(tc.p))
		}
		c := NewCache(nil)
		if _, err := c.Transitions(tc.p); err == nil {
			t.Errorf("%s: Cache.Transitions accepted %s", tc.name, syntax.String(tc.p))
		}
	}
}

// TestCorruptPrograms exercises the executor's defence against programs the
// compiler would never emit: unknown opcodes, unbalanced stacks, and
// failing sub-units referenced by opRef/opPar. Hand-built single-summand
// choices (which the compiler flattens away) must still execute correctly.
func TestCorruptPrograms(t *testing.T) {
	corrupt := func() *Prog {
		return &Prog{src: syntax.PNil, code: []instr{{op: 99}}}
	}
	if _, err := corrupt().Transitions(); err == nil {
		t.Error("unknown opcode executed")
	}
	if _, err := corrupt().Raw(); err == nil {
		t.Error("unknown opcode executed via Raw")
	}

	empty := &Prog{src: syntax.PNil}
	if _, err := empty.Transitions(); err == nil {
		t.Error("empty program (stack depth 0) executed")
	}

	good, err := Compile(nil, syntax.SendN(na))
	if err != nil {
		t.Fatal(err)
	}
	refBad := &Prog{src: syntax.PNil, units: []*Prog{corrupt()}, code: []instr{{op: opRef}}}
	if _, err := refBad.Transitions(); err == nil {
		t.Error("opRef to a corrupt unit executed")
	}
	parLeftBad := &Prog{src: syntax.PNil, units: []*Prog{corrupt(), good}, code: []instr{{op: opPar, a: 0, b: 1}}}
	if _, err := parLeftBad.Transitions(); err == nil {
		t.Error("opPar with a corrupt left unit executed")
	}
	parRightBad := &Prog{src: syntax.PNil, units: []*Prog{good, corrupt()}, code: []instr{{op: opPar, a: 0, b: 1}}}
	if _, err := parRightBad.Transitions(); err == nil {
		t.Error("opPar with a corrupt right unit executed")
	}

	// A single-summand choice passes its operand through unchanged.
	leaf := semantics.Trans{Act: good.leaves[0].Act, Target: syntax.PNil}
	single := &Prog{
		src:    syntax.SendN(na),
		leaves: []semantics.Trans{leaf},
		code:   []instr{{op: opEmit}, {op: opChoice, a: 1}},
	}
	ts, err := single.Transitions()
	if err != nil {
		t.Fatal(err)
	}
	if len(ts) != 1 || !reflect.DeepEqual(ts[0], leaf) {
		t.Errorf("single-summand choice = %v, want [%v]", ts, leaf)
	}
}

// TestCacheSetObs checks the cache mirrors its counters onto an attached
// tracer, live.
func TestCacheSetObs(t *testing.T) {
	tr := obs.New()
	c := NewCache(nil)
	c.SetObs(tr)
	p := syntax.Par{L: syntax.SendN(na), R: syntax.RecvN(na, nx)}
	if _, err := c.Transitions(p); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Transitions(p); err != nil {
		t.Fatal(err)
	}
	got := tr.Counters()
	st := c.Stats()
	want := map[string]uint64{
		"tprog.compiles":     st.Compiles,
		"tprog.cache_hits":   st.Hits,
		"tprog.cache_misses": st.Misses,
		"tprog.execs":        st.Execs,
	}
	for name, w := range want {
		if w == 0 {
			t.Errorf("%s: counter never moved (stats %+v)", name, st)
		}
		if uint64(got[name]) != w {
			t.Errorf("%s: tracer %d, cache %d", name, got[name], w)
		}
	}
}

// TestPublishLostRace pins first-publication-wins: a second publish of the
// same key returns the already-published unit and drops the duplicate.
func TestPublishLostRace(t *testing.T) {
	c := NewCache(nil)
	u1, err := Compile(nil, syntax.SendN(na))
	if err != nil {
		t.Fatal(err)
	}
	u2, err := Compile(nil, syntax.SendN(na))
	if err != nil {
		t.Fatal(err)
	}
	key := u1.Key()
	if got := c.publish(key, u1); got != u1 {
		t.Fatal("first publish did not install its unit")
	}
	if got := c.publish(key, u2); got != u1 {
		t.Error("second publish replaced the already-published unit")
	}
	if st := c.Stats(); st.Units != 1 || st.Compiles != 2 {
		t.Errorf("stats %+v, want Units=1 (one winner) Compiles=2 (work counter)", st)
	}
}

// TestSingleflightJoin drives the join path deterministically: a caller
// that finds an in-progress flight must wait for it, return its result, and
// account as a cache hit.
func TestSingleflightJoin(t *testing.T) {
	c := NewCache(nil)
	p := syntax.SendN(na)
	key := syntax.ExactKey(p)
	want, err := c.System().Steps(p)
	if err != nil {
		t.Fatal(err)
	}

	f := &flight{done: make(chan struct{})}
	c.mu.Lock()
	c.flights[key] = f
	c.mu.Unlock()

	type res struct {
		ts  []semantics.Trans
		err error
	}
	done := make(chan res, 1)
	go func() {
		ts, err := c.Transitions(p)
		done <- res{ts, err}
	}()

	f.ts = want
	close(f.done)
	got := <-done
	if got.err != nil {
		t.Fatal(got.err)
	}
	if !reflect.DeepEqual(got.ts, want) {
		t.Errorf("joined flight returned %v, want %v", got.ts, want)
	}
	if st := c.Stats(); st.Hits != 1 || st.Compiles != 0 {
		t.Errorf("stats %+v, want exactly one hit (the join) and no compiles", st)
	}
}
