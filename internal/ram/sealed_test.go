package ram

import "testing"

// Instr is sealed: the three Minsky-machine instructions of the §6 claim.
func TestInstrSealed(t *testing.T) {
	instrs := []Instr{Inc{}, DecJz{}, Halt{}}
	if len(instrs) != 3 {
		t.Fatalf("%d instruction types, want 3", len(instrs))
	}
	for _, i := range instrs {
		i.isInstr()
	}
}
