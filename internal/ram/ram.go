// Package ram implements the paper's §6 expressiveness claim: "it is easy
// to give an implementation (very similar to those given in [2] for a
// process algebraic approach of Linda) of a Random Access Machine" in the
// bπ-calculus. A two-counter Minsky machine — Turing-complete — is encoded
// with registers as bags of token processes and an atomic broadcast protocol
// for decrement-or-zero-test.
//
// The protocol exploits broadcast atomicity twice:
//
//  1. the probe p̄r⟨t⟩ reaches *every* token of the register in one step
//     (tokens cannot refuse, rule 12), committing them all to the fresh
//     round channel t;
//  2. the first token's reply t̄⟨tok⟩ simultaneously serves the program (one
//     decrement) and releases every other committed token back to its
//     register — exactly-one-decrement for free.
//
// The zero branch is a guess: the program aborts the round with t̄⟨zz⟩. On
// an empty register nobody objects; on a non-empty register every committed
// token hears the abort, restores itself, and flags the poison channel err.
// A computation is *honest* when err never fires, giving the faithful
// may-characterisation tested here:
//
//	the Minsky machine halts  ⟺  the encoding can reach halt̄ on an
//	                              err-free path (CanReachBarbAvoiding).
package ram

import (
	"fmt"

	"bpi/internal/machine"
	"bpi/internal/names"
	"bpi/internal/semantics"
	"bpi/internal/syntax"
)

// Reg identifies a register (0-based).
type Reg int

// Instr is a Minsky machine instruction.
type Instr interface{ isInstr() }

// Inc increments register R and continues at Next.
type Inc struct {
	R    Reg
	Next int
}

// DecJz decrements R and continues at NextPos if R > 0; otherwise continues
// at NextZero.
type DecJz struct {
	R        Reg
	NextPos  int
	NextZero int
}

// Halt stops the machine.
type Halt struct{}

func (Inc) isInstr()   {}
func (DecJz) isInstr() {}
func (Halt) isInstr()  {}

// Program is a Minsky machine: instructions addressed by index, execution
// starting at 0.
type Program []Instr

// Run interprets the program directly (the oracle), returning whether it
// halts within maxSteps and the final register file.
func (p Program) Run(regs []int, maxSteps int) (halted bool, final []int) {
	r := append([]int{}, regs...)
	pc := 0
	for step := 0; step < maxSteps; step++ {
		if pc < 0 || pc >= len(p) {
			return false, r
		}
		switch in := p[pc].(type) {
		case Halt:
			return true, r
		case Inc:
			for int(in.R) >= len(r) {
				r = append(r, 0)
			}
			r[in.R]++
			pc = in.Next
		case DecJz:
			for int(in.R) >= len(r) {
				r = append(r, 0)
			}
			if r[in.R] > 0 {
				r[in.R]--
				pc = in.NextPos
			} else {
				pc = in.NextZero
			}
		}
	}
	return false, r
}

// Channel names fixed by the encoding.
const (
	// HaltChan is broadcast once when the encoded machine halts.
	HaltChan names.Name = "halt"
	// ErrChan is the poison channel flagged by a dishonest zero guess.
	ErrChan names.Name = "errz"
	// tokTag / zzTag distinguish a token reply from a zero abort.
	tokTag names.Name = "tok"
	// zzTag marks the zero guess.
	zzTag names.Name = "zz"
)

func probeChan(r Reg) names.Name { return names.Name(fmt.Sprintf("pr%d", r)) }

// Env returns the shared definitions: the register token.
//
//	Tok(pr) = pr(t).( t̄⟨tok⟩ + t(y).((y=zz)(Tok(pr) ‖ err̄), Tok(pr)) )
func Env() syntax.Env {
	pr, t, y := names.Name("pr"), names.Name("t"), names.Name("y")
	env := syntax.Env{}
	env = env.Define("Tok", []names.Name{pr},
		syntax.Recv(pr, []names.Name{t},
			syntax.Choice(
				syntax.SendN(t, tokTag),
				syntax.Recv(t, []names.Name{y},
					syntax.If(y, zzTag,
						syntax.Group(
							syntax.Call{Id: "Tok", Args: []names.Name{pr}},
							syntax.SendN(ErrChan),
						),
						syntax.Call{Id: "Tok", Args: []names.Name{pr}})),
			)))
	return env
}

// Encode compiles the program with the given initial register values into a
// closed bπ process over Env(). Instruction k becomes a definition Ik added
// to the returned environment.
func Encode(p Program, regs []int) (syntax.Proc, syntax.Env, error) {
	env := Env()
	maxReg := Reg(len(regs) - 1)
	for _, in := range p {
		switch t := in.(type) {
		case Inc:
			if t.R > maxReg {
				maxReg = t.R
			}
			if t.Next < 0 || t.Next >= len(p) {
				return nil, nil, fmt.Errorf("ram: Inc jumps to %d (program size %d)", t.Next, len(p))
			}
		case DecJz:
			if t.R > maxReg {
				maxReg = t.R
			}
			if t.NextPos < 0 || t.NextPos >= len(p) || t.NextZero < 0 || t.NextZero >= len(p) {
				return nil, nil, fmt.Errorf("ram: DecJz jump out of range")
			}
		}
	}
	for k, in := range p {
		id := instrID(k)
		switch t := in.(type) {
		case Halt:
			env = env.Define(id, nil, syntax.SendN(HaltChan))
		case Inc:
			// τ.(Tok(pr_R) ‖ Inext): materialise a token, proceed.
			env = env.Define(id, nil, syntax.TauP(syntax.Group(
				syntax.Call{Id: "Tok", Args: []names.Name{probeChan(t.R)}},
				syntax.Call{Id: instrID(t.Next)},
			)))
		case DecJz:
			// νt p̄r⟨t⟩.( t(y).Ipos + t̄⟨zz⟩.Izero )
			tch := names.Name("t")
			y := names.Name("y")
			env = env.Define(id, nil,
				syntax.Restrict(
					syntax.Send(probeChan(t.R), []names.Name{tch},
						syntax.Choice(
							syntax.Recv(tch, []names.Name{y}, syntax.Call{Id: instrID(t.NextPos)}),
							syntax.Send(tch, []names.Name{zzTag}, syntax.Call{Id: instrID(t.NextZero)}),
						)), tch))
		}
	}
	parts := []syntax.Proc{}
	for r, n := range regs {
		for i := 0; i < n; i++ {
			parts = append(parts, syntax.Call{Id: "Tok", Args: []names.Name{probeChan(Reg(r))}})
		}
	}
	parts = append(parts, syntax.Call{Id: instrID(0)})
	return syntax.Group(parts...), env, nil
}

func instrID(k int) string { return fmt.Sprintf("I%d", k) }

// HaltsMaybe reports whether the encoded machine can halt honestly: halt̄
// reachable on an err-free path. By the protocol's construction this holds
// exactly when the Minsky machine halts (within the state budget).
func HaltsMaybe(p Program, regs []int, maxStates int) (bool, error) {
	enc, env, err := Encode(p, regs)
	if err != nil {
		return false, err
	}
	sys := semantics.NewSystem(env)
	return machine.CanReachBarbAvoiding(sys, enc, HaltChan, names.NewSet(ErrChan), maxStates)
}
