package ram

import (
	"testing"

	"bpi/internal/names"
)

func TestOracleInterpreter(t *testing.T) {
	// Doubling: r1 += 2 per r0 decrement.
	double := Program{
		DecJz{R: 0, NextPos: 1, NextZero: 3}, // 0
		Inc{R: 1, Next: 2},                   // 1
		Inc{R: 1, Next: 0},                   // 2
		Halt{},                               // 3
	}
	halted, regs := double.Run([]int{3, 0}, 1000)
	if !halted || regs[0] != 0 || regs[1] != 6 {
		t.Fatalf("oracle: halted=%v regs=%v", halted, regs)
	}
	// A non-terminating loop.
	loop := Program{DecJz{R: 0, NextPos: 0, NextZero: 0}}
	halted, _ = loop.Run([]int{0}, 200)
	if halted {
		t.Fatal("loop halted")
	}
}

func TestEnvValidates(t *testing.T) {
	globals := names.NewSet(ErrChan, HaltChan, tokTag, zzTag, "pr0", "pr1")
	if err := Env().ValidateWith(globals); err != nil {
		t.Fatal(err)
	}
}

func TestEncodeRejectsBadJumps(t *testing.T) {
	if _, _, err := Encode(Program{Inc{R: 0, Next: 7}}, []int{0}); err == nil {
		t.Fatal("out-of-range jump accepted")
	}
	if _, _, err := Encode(Program{DecJz{R: 0, NextPos: 0, NextZero: 9}}, []int{0}); err == nil {
		t.Fatal("out-of-range DecJz accepted")
	}
}

// The faithful may-characterisation: the encoding can halt honestly exactly
// when the Minsky machine halts.
func TestHaltsMaybeMatchesOracle(t *testing.T) {
	cases := []struct {
		name string
		prog Program
		regs []int
		want bool
	}{
		{"immediate-halt", Program{Halt{}}, []int{0}, true},
		{"inc-then-halt", Program{Inc{R: 0, Next: 1}, Halt{}}, []int{0}, true},
		{"drain-two", Program{
			DecJz{R: 0, NextPos: 0, NextZero: 1},
			Halt{},
		}, []int{2}, true},
		{"zero-loop-never-halts", Program{
			DecJz{R: 0, NextPos: 1, NextZero: 0},
			DecJz{R: 0, NextPos: 1, NextZero: 0},
		}, []int{0}, false},
		{"halts-only-via-wrong-guess", Program{
			// r0 = 1: the machine takes the positive branch into a zero-loop
			// and never halts; only a dishonest zero guess reaches Halt.
			DecJz{R: 0, NextPos: 1, NextZero: 2},
			DecJz{R: 1, NextPos: 1, NextZero: 1}, // r1 = 0: spin forever
			Halt{},
		}, []int{1, 0}, false},
		{"exact-count-assertion", Program{
			// Drain exactly 2 tokens from r0 then require emptiness: halts
			// iff r0 == 2.
			DecJz{R: 0, NextPos: 1, NextZero: 4}, // 0: first must be pos
			DecJz{R: 0, NextPos: 2, NextZero: 4}, // 1: second must be pos
			DecJz{R: 0, NextPos: 4, NextZero: 3}, // 2: third must be zero
			Halt{},                               // 3
			DecJz{R: 1, NextPos: 4, NextZero: 4}, // 4: r1=0 spin (failure)
		}, []int{2, 0}, true},
		{"exact-count-assertion-wrong", Program{
			DecJz{R: 0, NextPos: 1, NextZero: 4},
			DecJz{R: 0, NextPos: 2, NextZero: 4},
			DecJz{R: 0, NextPos: 4, NextZero: 3},
			Halt{},
			DecJz{R: 1, NextPos: 4, NextZero: 4},
		}, []int{3, 0}, false},
	}
	for _, cse := range cases {
		oracleHalts, _ := cse.prog.Run(cse.regs, 5000)
		if oracleHalts != cse.want {
			t.Fatalf("%s: oracle says %v, case expects %v (test bug)", cse.name, oracleHalts, cse.want)
		}
		got, err := HaltsMaybe(cse.prog, cse.regs, 200000)
		if err != nil {
			t.Fatalf("%s: %v", cse.name, err)
		}
		if got != cse.want {
			t.Errorf("%s: encoding halts=%v, machine halts=%v", cse.name, got, cse.want)
		}
	}
}

// End-to-end arithmetic through the encoding: doubling r0=2 into r1, then
// asserting r1 == 4 in-language (drain four, require the fifth to be zero).
func TestDoublingComputesInsideTheCalculus(t *testing.T) {
	prog := Program{
		DecJz{R: 0, NextPos: 1, NextZero: 3}, // 0: while r0 > 0
		Inc{R: 1, Next: 2},                   // 1:   r1++
		Inc{R: 1, Next: 0},                   // 2:   r1++
		DecJz{R: 1, NextPos: 4, NextZero: 9}, // 3: assert r1 >= 1
		DecJz{R: 1, NextPos: 5, NextZero: 9}, // 4: assert r1 >= 2
		DecJz{R: 1, NextPos: 6, NextZero: 9}, // 5: assert r1 >= 3
		DecJz{R: 1, NextPos: 7, NextZero: 9}, // 6: assert r1 >= 4
		DecJz{R: 1, NextPos: 9, NextZero: 8}, // 7: assert r1 == 4
		Halt{},                               // 8
		DecJz{R: 2, NextPos: 9, NextZero: 9}, // 9: fail: spin on empty r2
	}
	if halts, regs := prog.Run([]int{2, 0, 0}, 5000); !halts || regs[1] != 0 {
		t.Fatalf("oracle setup wrong: halts=%v regs=%v", halts, regs)
	}
	got, err := HaltsMaybe(prog, []int{2, 0, 0}, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if !got {
		t.Error("the doubling computation should verify r1 == 4 and halt")
	}
	// And with the wrong assertion bound (expecting 5) it must not halt.
	wrong := append(Program{}, prog...)
	wrong[7] = DecJz{R: 1, NextPos: 10, NextZero: 9}
	wrong = append(wrong, Program{
		DecJz{R: 1, NextPos: 9, NextZero: 8}, // 10: assert r1 == 5 instead
	}...)
	got, err = HaltsMaybe(wrong, []int{2, 0, 0}, 400000)
	if err != nil {
		t.Fatal(err)
	}
	if got {
		t.Error("r1 == 5 must be refuted by the encoding")
	}
}
