// Package bpi is a complete Go implementation of the bπ-calculus of Ene and
// Muntean, "A Broadcast-based Calculus for Communicating Systems"
// (IPPS/FMPPTA 2001): a process calculus for reconfigurable communicating
// systems whose only communication primitive is broadcast.
//
// The package is a façade over the implementation packages:
//
//   - terms are built with the constructors re-exported here (Send, Recv,
//     TauP, Choice, Group, Restrict, If, rec/call) or parsed from the
//     concrete syntax with Parse/ParseProgram;
//   - the operational semantics of Table 2 (the discard relation) and
//     Table 3 (the early labelled transition system with broadcast
//     composition) is exposed through System.Steps and System.Discards;
//   - the behavioural equivalences of the paper — strong and weak barbed
//     (Definition 3), step (Definition 5) and labelled (Definitions 7/8)
//     bisimilarity, the one-step relations ~+/≈+ (Definitions 11/15), and
//     the congruences ~c/≈c (Section 4) — are decided by Checker;
//   - the axiomatisation of Section 5 (axiom system A, head normal forms,
//     the expansion law and a complete decision procedure for A ⊢ p = q on
//     finite terms) lives in Prover;
//   - systems are executed with Run/RunMany/CanReachBarb (broadcast
//     scheduling, Monte-Carlo pools, reachability and inevitability);
//   - the paper's worked examples (distributed cycle detection, transaction
//     inconsistency detection, PVM-style dynamic group communication) are
//     available as prebuilt environments;
//   - a resident checking daemon (cmd/bpid) serves all of the above over
//     HTTP/JSON from one shared term store with a verdict cache; talk to it
//     with Client (NewClient) or embed its core with NewService.
//
// # Quickstart
//
//	p := bpi.MustParse("a!(b) | a?(x).x! | a?(y).y!")
//	sys := bpi.NewSystem(nil)
//	ts, _ := sys.Steps(p) // one broadcast transition feeding both receivers
//
//	ch := bpi.NewChecker(nil)
//	res, _ := ch.Labelled(bpi.MustParse("a?"), bpi.MustParse("b?"), false)
//	// res.Related == true: the noisy law of broadcast bisimilarity.
//
// See README.md for the architecture and EXPERIMENTS.md for the
// paper-reproduction experiment suite.
package bpi
