package bpi

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strings"
	"time"

	"bpi/internal/service"
)

// Wire types of the bpid daemon API, re-exported for Client callers.
type (
	// EquivRequest asks a daemon for an equivalence verdict.
	EquivRequest = service.EquivRequest
	// EquivResponse is a daemon equivalence verdict.
	EquivResponse = service.EquivResponse
	// ProveRequest asks a daemon whether A ⊢ p = q.
	ProveRequest = service.ProveRequest
	// ProveResponse is a daemon provability verdict.
	ProveResponse = service.ProveResponse
	// RunRequest asks a daemon for one scheduled machine execution.
	RunRequest = service.RunRequest
	// RunResponse is a daemon machine-execution report.
	RunResponse = service.RunResponse
	// ParseResponse is a daemon term canonicalisation.
	ParseResponse = service.ParseResponse
	// StepResponse lists a term's symbolic transitions.
	StepResponse = service.StepResponse
	// ExploreResponse summarises an explored transition graph.
	ExploreResponse = service.ExploreResponse
	// ExploreRequest configures a daemon graph exploration.
	ExploreRequest = service.ExploreRequest
	// JobRequest submits an asynchronous daemon job.
	JobRequest = service.JobRequest
	// JobStatus reports an asynchronous daemon job.
	JobStatus = service.JobStatusResponse
	// CertificateResponse carries the replayable certificate of a finished
	// equiv job.
	CertificateResponse = service.CertificateResponse
	// APIError is the typed error a daemon returns (code + message, plus a
	// Retry-After hint on admission sheds).
	APIError = service.ErrorBody
	// BatchRequest carries many equivalence queries for POST /v1/equiv/batch.
	BatchRequest = service.BatchRequest
	// BatchItem is one pair's verdict (or typed error) within a batch.
	BatchItem = service.BatchItem
	// BatchTrailer is the end-of-stream accounting line of a batch.
	BatchTrailer = service.BatchTrailer
)

// BatchResult is a fully read batch response: the per-pair items reordered
// by request index, plus the trailer.
type BatchResult struct {
	Items   []BatchItem
	Trailer BatchTrailer
}

// Service is the embeddable daemon core (shared store, worker pool, verdict
// cache, job table); mount Service.Handler on any http.Server.
type Service = service.Server

// ServiceConfig tunes an embedded Service; the zero value is usable.
type ServiceConfig = service.Config

// NewService returns a daemon core over one fresh shared term store.
func NewService(cfg ServiceConfig) *Service { return service.New(cfg) }

// Client calls a running bpid daemon. The zero HTTP client is usable;
// deadlines are passed per call via context (the daemon additionally applies
// its own request timeouts).
type Client struct {
	// BaseURL is the daemon root, e.g. "http://127.0.0.1:8317".
	BaseURL string
	// HTTP is the underlying client (http.DefaultClient when nil).
	HTTP *http.Client
}

// NewClient returns a client for the daemon at baseURL.
func NewClient(baseURL string) *Client {
	return &Client{BaseURL: strings.TrimRight(baseURL, "/")}
}

func (c *Client) httpClient() *http.Client {
	if c.HTTP != nil {
		return c.HTTP
	}
	return http.DefaultClient
}

// call POSTs (or GETs, when in is nil) JSON and decodes into out, returning
// the daemon's typed *APIError on non-2xx responses.
func (c *Client) call(ctx context.Context, method, path string, in, out any) error {
	var body io.Reader
	if in != nil {
		buf, err := json.Marshal(in)
		if err != nil {
			return err
		}
		body = bytes.NewReader(buf)
	}
	req, err := http.NewRequestWithContext(ctx, method, c.BaseURL+path, body)
	if err != nil {
		return err
	}
	if in != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return err
	}
	if resp.StatusCode/100 != 2 {
		var er struct {
			Error APIError `json:"error"`
		}
		if json.Unmarshal(data, &er) == nil && er.Error.Code != "" {
			return &er.Error
		}
		return fmt.Errorf("bpid: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	if out == nil {
		return nil
	}
	return json.Unmarshal(data, out)
}

// Health reports whether the daemon is up and not draining.
func (c *Client) Health(ctx context.Context) error {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/healthz", nil)
	if err != nil {
		return err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	io.Copy(io.Discard, resp.Body)
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("bpid: unhealthy: HTTP %d", resp.StatusCode)
	}
	return nil
}

// ParseRemote canonicalises a term on the daemon.
func (c *Client) ParseRemote(ctx context.Context, term string) (*ParseResponse, error) {
	var out ParseResponse
	err := c.call(ctx, http.MethodPost, "/v1/parse", service.ParseRequest{Term: term}, &out)
	return &out, err
}

// Step lists a term's symbolic transitions, computed on the daemon.
func (c *Client) Step(ctx context.Context, term string) (*StepResponse, error) {
	var out StepResponse
	err := c.call(ctx, http.MethodPost, "/v1/step", service.StepRequest{Term: term}, &out)
	return &out, err
}

// ExploreRemote summarises the finite transition graph of a term.
func (c *Client) ExploreRemote(ctx context.Context, req ExploreRequest) (*ExploreResponse, error) {
	var out ExploreResponse
	err := c.call(ctx, http.MethodPost, "/v1/explore", req, &out)
	return &out, err
}

// Equiv asks the daemon for an equivalence verdict.
func (c *Client) Equiv(ctx context.Context, req EquivRequest) (*EquivResponse, error) {
	var out EquivResponse
	err := c.call(ctx, http.MethodPost, "/v1/equiv", req, &out)
	return &out, err
}

// Batch posts many pairs to /v1/equiv/batch and reads the whole NDJSON
// stream: items are returned sorted by request index (the daemon streams
// them in completion order), and the done=true trailer is required — a
// stream without one was truncated and is reported as an error.
func (c *Client) Batch(ctx context.Context, req BatchRequest) (*BatchResult, error) {
	buf, err := json.Marshal(req)
	if err != nil {
		return nil, err
	}
	hreq, err := http.NewRequestWithContext(ctx, http.MethodPost, c.BaseURL+"/v1/equiv/batch", bytes.NewReader(buf))
	if err != nil {
		return nil, err
	}
	hreq.Header.Set("Content-Type", "application/json")
	resp, err := c.httpClient().Do(hreq)
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		data, _ := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
		var er struct {
			Error APIError `json:"error"`
		}
		if json.Unmarshal(data, &er) == nil && er.Error.Code != "" {
			return nil, &er.Error
		}
		return nil, fmt.Errorf("bpid: batch: HTTP %d: %s", resp.StatusCode, strings.TrimSpace(string(data)))
	}
	out := &BatchResult{Items: make([]BatchItem, 0, len(req.Pairs))}
	sawTrailer := false
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 0, 64<<10), 32<<20)
	for sc.Scan() {
		line := bytes.TrimSpace(sc.Bytes())
		if len(line) == 0 {
			continue
		}
		if sawTrailer {
			return nil, fmt.Errorf("bpid: batch: stream continues after its trailer")
		}
		// The trailer is the only line with "done"; items carry "index".
		var probe struct {
			Done *bool `json:"done"`
		}
		if err := json.Unmarshal(line, &probe); err != nil {
			return nil, fmt.Errorf("bpid: batch: bad stream line: %w", err)
		}
		if probe.Done != nil {
			if err := json.Unmarshal(line, &out.Trailer); err != nil {
				return nil, fmt.Errorf("bpid: batch: bad trailer: %w", err)
			}
			sawTrailer = true
			continue
		}
		var item BatchItem
		if err := json.Unmarshal(line, &item); err != nil {
			return nil, fmt.Errorf("bpid: batch: bad item: %w", err)
		}
		out.Items = append(out.Items, item)
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawTrailer {
		return nil, fmt.Errorf("bpid: batch: stream truncated (no trailer)")
	}
	sort.Slice(out.Items, func(i, j int) bool { return out.Items[i].Index < out.Items[j].Index })
	return out, nil
}

// Prove asks the daemon whether A ⊢ p = q.
func (c *Client) Prove(ctx context.Context, req ProveRequest) (*ProveResponse, error) {
	var out ProveResponse
	err := c.call(ctx, http.MethodPost, "/v1/prove", req, &out)
	return &out, err
}

// RunRemote executes one scheduled run on the daemon.
func (c *Client) RunRemote(ctx context.Context, req RunRequest) (*RunResponse, error) {
	var out RunResponse
	err := c.call(ctx, http.MethodPost, "/v1/run", req, &out)
	return &out, err
}

// Submit enqueues an asynchronous job and returns its ID.
func (c *Client) Submit(ctx context.Context, req JobRequest) (string, error) {
	var out service.JobSubmitResponse
	if err := c.call(ctx, http.MethodPost, "/v1/jobs", req, &out); err != nil {
		return "", err
	}
	return out.ID, nil
}

// Job polls an asynchronous job once.
func (c *Client) Job(ctx context.Context, id string) (*JobStatus, error) {
	var out JobStatus
	err := c.call(ctx, http.MethodGet, "/v1/jobs/"+id, nil, &out)
	return &out, err
}

// Certificate fetches the replayable certificate recorded by a finished
// equiv job; verify it with internal/cert.Verify or `bpicert verify`.
func (c *Client) Certificate(ctx context.Context, id string) (*CertificateResponse, error) {
	var out CertificateResponse
	err := c.call(ctx, http.MethodGet, "/certificate/"+id, nil, &out)
	return &out, err
}

// Wait polls a job every interval until it finishes or ctx expires.
func (c *Client) Wait(ctx context.Context, id string, interval time.Duration) (*JobStatus, error) {
	if interval <= 0 {
		interval = 50 * time.Millisecond
	}
	t := time.NewTicker(interval)
	defer t.Stop()
	for {
		st, err := c.Job(ctx, id)
		if err != nil {
			return nil, err
		}
		if st.State == service.JobDone || st.State == service.JobFailed {
			return st, nil
		}
		select {
		case <-t.C:
		case <-ctx.Done():
			return nil, ctx.Err()
		}
	}
}

// Metrics fetches the daemon's raw Prometheus text exposition.
func (c *Client) Metrics(ctx context.Context) (string, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, c.BaseURL+"/metrics", nil)
	if err != nil {
		return "", err
	}
	resp, err := c.httpClient().Do(req)
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(io.LimitReader(resp.Body, 8<<20))
	if err != nil {
		return "", err
	}
	if resp.StatusCode != http.StatusOK {
		return "", fmt.Errorf("bpid: metrics: HTTP %d", resp.StatusCode)
	}
	return string(data), nil
}
