package bpi_test

import (
	"context"
	"net/http/httptest"
	"os"
	"strings"
	"testing"
	"time"

	bpi "bpi"
)

// TestClientAgainstEmbeddedService boots the daemon core in-process and
// drives it through the public client: the facade a Go program embedding
// bpid would use.
func TestClientAgainstEmbeddedService(t *testing.T) {
	svc := bpi.NewService(bpi.ServiceConfig{})
	ts := httptest.NewServer(svc.Handler())
	defer ts.Close()
	smoke(t, bpi.NewClient(ts.URL))
}

// TestClientAgainstExternalDaemon drives a separately-booted bpid process,
// named by BPID_URL (CI builds cmd/bpid, starts it, and runs this test).
// Skipped when BPID_URL is unset.
func TestClientAgainstExternalDaemon(t *testing.T) {
	url := os.Getenv("BPID_URL")
	if url == "" {
		t.Skip("BPID_URL not set; external daemon smoke runs in CI only")
	}
	smoke(t, bpi.NewClient(url))
}

// smoke runs one pass over the client surface against any live daemon.
func smoke(t *testing.T, cl *bpi.Client) {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 60*time.Second)
	defer cancel()

	if err := cl.Health(ctx); err != nil {
		t.Fatal(err)
	}
	pr, err := cl.ParseRemote(ctx, "a!(b) | a?(x).x!")
	if err != nil {
		t.Fatal(err)
	}
	if pr.Canonical == "" || len(pr.FreeNames) == 0 {
		t.Fatalf("parse: %+v", pr)
	}
	req := bpi.EquivRequest{P: "a?(x).x!", Q: "a?(y).y!", Rel: "labelled"}
	first, err := cl.Equiv(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !first.Related {
		t.Fatalf("alpha-variants must be bisimilar: %+v", first)
	}
	second, err := cl.Equiv(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatalf("repeat query should be served from the verdict cache: %+v", second)
	}
	pv, err := cl.Prove(ctx, bpi.ProveRequest{P: "a! + a!", Q: "a!"})
	if err != nil {
		t.Fatal(err)
	}
	if !pv.Proved {
		t.Fatal("A ⊢ a!+a! = a! expected provable")
	}
	id, err := cl.Submit(ctx, bpi.JobRequest{Kind: "run",
		Run: &bpi.RunRequest{Term: "a!.b!.0", KeepTrace: true}})
	if err != nil {
		t.Fatal(err)
	}
	st, err := cl.Wait(ctx, id, 10*time.Millisecond)
	if err != nil {
		t.Fatal(err)
	}
	if st.State != "done" || st.Run == nil || st.Run.Steps != 2 {
		t.Fatalf("job: %+v", st)
	}
	text, err := cl.Metrics(ctx)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(text, "bpid_verdict_cache_hits_total") {
		t.Fatalf("metrics missing verdict-cache counters:\n%s", text)
	}
}
