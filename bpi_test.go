package bpi_test

import (
	"testing"

	bpi "bpi"
)

func TestFacadeQuickstart(t *testing.T) {
	p := bpi.MustParse("a!(b) | a?(x).x! | a?(y).y!")
	sys := bpi.NewSystem(nil)
	ts, err := sys.Steps(p)
	if err != nil {
		t.Fatal(err)
	}
	outs := 0
	for _, tr := range ts {
		if tr.Act.IsOutput() {
			outs++
		}
	}
	if outs != 1 {
		t.Fatalf("expected one broadcast, got %d (%v)", outs, ts)
	}
}

func TestFacadeChecker(t *testing.T) {
	ch := bpi.NewChecker(nil)
	res, err := ch.Labelled(bpi.MustParse("a?"), bpi.MustParse("b?"), false)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Related {
		t.Error("noisy law lost through the facade")
	}
}

func TestFacadeProver(t *testing.T) {
	pr := bpi.NewProver(nil)
	ok, err := pr.Decide(bpi.MustParse("a! + a!"), bpi.MustParse("a!"))
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Error("S2 not provable through the facade")
	}
}

func TestFacadeRun(t *testing.T) {
	res, err := bpi.Run(nil, bpi.MustParse("a!.b!.c!"), bpi.RunOptions{KeepTrace: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Steps != 3 || !res.Quiescent {
		t.Fatalf("run: %+v", res)
	}
}

func TestFacadeBuilders(t *testing.T) {
	p := bpi.Group(
		bpi.SendN("a", "b"),
		bpi.Recv("a", []bpi.Name{"x"}, bpi.SendN("x")),
	)
	q := bpi.MustParse("a!(b) | a?(x).x!")
	if !bpi.AlphaEqual(p, q) {
		t.Errorf("builder term %s differs from parsed %s", bpi.Format(p), bpi.Format(q))
	}
	if got := bpi.FreeNames(p); len(got) != 2 {
		t.Errorf("free names: %v", got)
	}
}

func TestFacadeExplore(t *testing.T) {
	g, err := bpi.Explore(bpi.NewSystem(nil), []bpi.Proc{bpi.MustParse("a!.b!")}, bpi.ExploreOptions{})
	if err != nil {
		t.Fatal(err)
	}
	if g.NumStates() != 3 {
		t.Fatalf("graph: %v", g)
	}
}

func TestFacadeReachability(t *testing.T) {
	ok, err := bpi.CanReachBarb(nil, bpi.MustParse("tau.a!"), "a", 0)
	if err != nil || !ok {
		t.Fatalf("reachability: %v %v", ok, err)
	}
	always, _, err := bpi.AlwaysReachesBarb(nil, bpi.MustParse("tau.a! + tau"), "a", 0)
	if err != nil {
		t.Fatal(err)
	}
	if always {
		t.Error("avoidable barb reported inevitable")
	}
}
